//! Adversarial table generation strategies.
//!
//! Each strategy targets an instance shape where dependency discovery is
//! known to concentrate its hardness or its edge cases: near-keys, NULL
//! floods, constant columns, duplicate-heavy multisets, degenerate shapes
//! (empty / single-row / zero-column), and widths at the 256-column
//! `ColumnSet` boundary. Uniform-random tables are kept as a control —
//! they exercise the average case the existing randomized tests already
//! cover.

use muds_table::Table;
use rand::prelude::*;

/// Size bounds for the oracle-checked strategies. Kept small enough that
/// the exponential naive oracles stay fast (they are gated at 16 columns;
/// the defaults stay well below).
#[derive(Debug, Clone)]
pub struct SizeBounds {
    /// Maximum column count for narrow (oracle-checked) strategies.
    pub max_cols: usize,
    /// Maximum row count for narrow strategies.
    pub max_rows: usize,
}

impl Default for SizeBounds {
    fn default() -> Self {
        SizeBounds { max_cols: 6, max_rows: 24 }
    }
}

/// A named table generator.
pub struct Strategy {
    /// Stable identifier (used in counters, failure reports, and corpus
    /// file names).
    pub name: &'static str,
    generate: fn(&mut StdRng, &SizeBounds) -> Table,
}

impl Strategy {
    /// Generates one table from this strategy.
    pub fn generate(&self, rng: &mut StdRng, bounds: &SizeBounds) -> Table {
        (self.generate)(rng, bounds)
    }
}

/// All strategies, rotated round-robin by the fuzz loop.
pub const STRATEGIES: &[Strategy] = &[
    Strategy { name: "uniform", generate: gen_uniform },
    Strategy { name: "null-heavy", generate: gen_null_heavy },
    Strategy { name: "constant-columns", generate: gen_constant_columns },
    Strategy { name: "near-unique", generate: gen_near_unique },
    Strategy { name: "duplicate-heavy", generate: gen_duplicate_heavy },
    Strategy { name: "degenerate", generate: gen_degenerate },
    Strategy { name: "wide-boundary", generate: gen_wide_boundary },
];

/// Materializes a `cols × rows` table with `c0..` column names from a
/// cell-generating closure.
fn build(
    name: &str,
    cols: usize,
    rows: usize,
    mut cell: impl FnMut(usize, usize) -> String,
) -> Table {
    let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let data: Vec<Vec<String>> =
        (0..rows).map(|r| (0..cols).map(|c| cell(r, c)).collect()).collect();
    // lint:allow(panic): the generator fills every cell of a rows x cols
    // grid, so the shape invariants Table::from_rows checks hold by
    // construction; a failure is a generator bug worth a loud abort.
    Table::from_rows(name, &name_refs, &data).expect("generated table is well-formed")
}

/// Control: independent uniform draws from a small domain.
fn gen_uniform(rng: &mut StdRng, bounds: &SizeBounds) -> Table {
    let cols = rng.gen_range(1..=bounds.max_cols);
    let rows = rng.gen_range(0..=bounds.max_rows);
    let domain = rng.gen_range(1..=4u32);
    build("uniform", cols, rows, |_, _| rng.gen_range(0..domain).to_string())
}

/// NULL flood: most cells empty, including whole all-NULL columns. NULLs
/// stress the "NULL = NULL" FD/UCC semantics and SPIDER's dependent-side
/// NULL skipping at once.
fn gen_null_heavy(rng: &mut StdRng, bounds: &SizeBounds) -> Table {
    let cols = rng.gen_range(1..=bounds.max_cols);
    let rows = rng.gen_range(0..=bounds.max_rows);
    let null_p: f64 = rng.gen_range(5..=9u32) as f64 / 10.0;
    // Some columns are entirely NULL.
    let all_null: Vec<bool> = (0..cols).map(|_| rng.gen_bool(0.3)).collect();
    build("null-heavy", cols, rows, |_, c| {
        if all_null[c] || rng.gen_bool(null_p) {
            String::new()
        } else {
            rng.gen_range(0..3u32).to_string()
        }
    })
}

/// Constant columns mixed with a few informative ones. Constant columns
/// produce `∅ → A` FDs and aggressive C⁺ pruning in TANE.
fn gen_constant_columns(rng: &mut StdRng, bounds: &SizeBounds) -> Table {
    let cols = rng.gen_range(1..=bounds.max_cols);
    let rows = rng.gen_range(0..=bounds.max_rows);
    let constant: Vec<Option<String>> = (0..cols)
        .map(|_| {
            if rng.gen_bool(0.6) {
                // A constant value — sometimes the constant is NULL.
                Some(if rng.gen_bool(0.25) { String::new() } else { "k".to_string() })
            } else {
                None
            }
        })
        .collect();
    build("constant-columns", cols, rows, |_, c| match &constant[c] {
        Some(v) => v.clone(),
        None => rng.gen_range(0..4u32).to_string(),
    })
}

/// Near-keys: columns that are unique except for a handful of planted
/// collisions. The hardest shape for the DUCC walk's pruning and for
/// minimality checks (minimal UCCs sit just above the singletons).
fn gen_near_unique(rng: &mut StdRng, bounds: &SizeBounds) -> Table {
    let cols = rng.gen_range(1..=bounds.max_cols);
    let rows = rng.gen_range(2..=bounds.max_rows.max(2));
    // Each column is the row id, except a few rows copy another row's value.
    let collisions: Vec<(usize, usize, usize)> = (0..rng.gen_range(1..=4usize))
        .map(|_| (rng.gen_range(0..cols), rng.gen_range(0..rows), rng.gen_range(0..rows)))
        .collect();
    build("near-unique", cols, rows, |r, c| {
        let mut v = r;
        for &(cc, from, to) in &collisions {
            if cc == c && r == from {
                v = to;
            }
        }
        v.to_string()
    })
}

/// Duplicate-heavy multiset: few distinct rows, each repeated. A relation
/// with duplicate rows has no UCC at all (§3 of the paper); every pipeline
/// must degrade identically instead of relying on the dedup precondition.
fn gen_duplicate_heavy(rng: &mut StdRng, bounds: &SizeBounds) -> Table {
    let cols = rng.gen_range(1..=bounds.max_cols);
    let distinct = rng.gen_range(1..=4usize);
    let rows = rng.gen_range(distinct..=bounds.max_rows.max(distinct));
    let base: Vec<Vec<String>> = (0..distinct)
        .map(|_| (0..cols).map(|_| rng.gen_range(0..3u32).to_string()).collect())
        .collect();
    let picks: Vec<usize> = (0..rows).map(|_| rng.gen_range(0..distinct)).collect();
    build("duplicate-heavy", cols, rows, |r, c| base[picks[r]][c].clone())
}

/// Degenerate shapes: zero rows, one row, zero columns, a single cell,
/// and all-NULL-only relations.
fn gen_degenerate(rng: &mut StdRng, _bounds: &SizeBounds) -> Table {
    match rng.gen_range(0..5u32) {
        0 => {
            // Zero rows, a few columns.
            let cols = rng.gen_range(1..=3usize);
            build("degenerate-0row", cols, 0, |_, _| unreachable!())
        }
        1 => {
            // One row.
            let cols = rng.gen_range(1..=3usize);
            build("degenerate-1row", cols, 1, |_, c| c.to_string())
        }
        2 => {
            // Zero columns (only reachable through take_columns).
            let rows = rng.gen_range(0..=3usize);
            build("degenerate", 2, rows, |r, _| r.to_string()).take_columns(0)
        }
        3 => build("degenerate-cell", 1, 1, |_, _| "x".to_string()),
        _ => {
            // All cells NULL.
            let cols = rng.gen_range(1..=3usize);
            let rows = rng.gen_range(0..=3usize);
            build("degenerate-allnull", cols, rows, |_, _| String::new())
        }
    }
}

/// Width at and just under the 256-column `ColumnSet` boundary. The value
/// structure is kept trivial (one key column, the rest constant or
/// two-valued) so the lattice algorithms terminate instantly while every
/// bitset word of `ColumnSet` is exercised.
fn gen_wide_boundary(rng: &mut StdRng, _bounds: &SizeBounds) -> Table {
    let cols = rng.gen_range(250..=256usize);
    let rows = rng.gen_range(2..=6usize);
    let two_valued: Vec<bool> = (0..cols).map(|_| rng.gen_bool(0.05)).collect();
    build("wide-boundary", cols, rows, |r, c| {
        if c == 0 {
            r.to_string() // key column
        } else if two_valued[c] {
            (r % 2).to_string()
        } else {
            "k".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_generates_valid_tables() {
        let bounds = SizeBounds::default();
        let mut rng = StdRng::seed_from_u64(1);
        for strategy in STRATEGIES {
            for _ in 0..20 {
                let t = strategy.generate(&mut rng, &bounds);
                assert!(t.num_columns() <= 256, "{}", strategy.name);
                // Row reconstruction works for every generated shape.
                for r in 0..t.num_rows() {
                    assert_eq!(t.row(r).len(), t.num_columns());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let bounds = SizeBounds::default();
        for strategy in STRATEGIES {
            let t1 = strategy.generate(&mut StdRng::seed_from_u64(99), &bounds);
            let t2 = strategy.generate(&mut StdRng::seed_from_u64(99), &bounds);
            assert_eq!(t1.num_rows(), t2.num_rows());
            assert_eq!(t1.num_columns(), t2.num_columns());
            for r in 0..t1.num_rows() {
                assert_eq!(t1.row(r), t2.row(r), "{}", strategy.name);
            }
        }
    }

    #[test]
    fn wide_boundary_reaches_256_columns() {
        let bounds = SizeBounds::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut max_seen = 0;
        for _ in 0..64 {
            let t = gen_wide_boundary(&mut rng, &bounds);
            max_seen = max_seen.max(t.num_columns());
        }
        assert_eq!(max_seen, 256, "the boundary itself must be generated");
    }

    #[test]
    fn degenerate_covers_zero_columns() {
        let bounds = SizeBounds::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_zero_cols = false;
        let mut saw_zero_rows = false;
        for _ in 0..64 {
            let t = gen_degenerate(&mut rng, &bounds);
            saw_zero_cols |= t.num_columns() == 0;
            saw_zero_rows |= t.num_rows() == 0;
        }
        assert!(saw_zero_cols && saw_zero_rows);
    }
}
