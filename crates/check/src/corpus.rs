//! Corpus writer: persists shrunken failing tables as CSV regression
//! seeds under `tests/corpus/`, where the equivalence suite auto-discovers
//! and re-checks them on every test run.

use std::path::{Path, PathBuf};

use muds_table::{table_to_csv_file, CsvOptions, Table, TableError};

/// Writes `table` as `<invariant>-s<seed>-i<iter>.csv` under `dir`,
/// creating the directory if needed. Returns the written path, or `None`
/// for zero-column tables — CSV has no representation for a relation with
/// rows but no attributes, so those repros live as unit tests instead.
pub fn write_repro(
    dir: &Path,
    table: &Table,
    invariant: &str,
    seed: u64,
    iteration: usize,
) -> Result<Option<PathBuf>, TableError> {
    if table.num_columns() == 0 {
        return Ok(None);
    }
    std::fs::create_dir_all(dir)?;
    // Invariant names are lowercase-dash identifiers already; sanitize
    // defensively so a future name can never escape the corpus directory.
    let tag: String = invariant
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
        .collect();
    let path = dir.join(format!("{tag}-s{seed}-i{iteration}.csv"));
    table_to_csv_file(table, &path, &CsvOptions::default())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::table_from_csv_file;

    #[test]
    fn round_trips_through_the_corpus_format() {
        let dir = std::env::temp_dir().join("muds-check-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", ""], vec!["2", "x"]]).unwrap();
        let path = write_repro(&dir, &t, "naive-fd", 42, 7).unwrap().unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "naive-fd-s42-i7.csv");
        let back = table_from_csv_file(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.num_columns(), 2);
        assert_eq!(back.row(0), t.row(0));
        assert_eq!(back.row(1), t.row(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_column_tables_are_skipped() {
        let dir = std::env::temp_dir().join("muds-check-corpus-test-zc");
        let t = Table::from_rows("t", &["a"], &[vec!["1"]]).unwrap().take_columns(0);
        assert_eq!(write_repro(&dir, &t, "panic", 1, 2).unwrap(), None);
        assert!(!dir.exists(), "nothing should be created for skipped repros");
    }
}
