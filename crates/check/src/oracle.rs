//! The differential oracle: runs every pipeline and the exponential naive
//! oracles on a table and checks structural invariants of the results.
//!
//! A check suite returns the *first* failing invariant as a
//! [`FailureDetail`]; the invariant name doubles as the failure signature
//! the shrinker preserves while minimizing the input.

use std::collections::BTreeSet;

use muds_core::{
    apply_incremental, profile, profile_from_json, profile_to_json, Algorithm, ProfilePayload,
    ProfilerConfig,
};
use muds_fd::{approximate_fds, g3_error, holds, Fd};
use muds_ind::{naive_inds, nary_ind_holds, nary_inds, Ind};
use muds_lattice::{complement_family, minimal_hitting_sets, ColumnSet};
use muds_obs::Metrics;
use muds_pli::PliCache;
use muds_table::{Table, TableDelta, TableError, MAX_COLUMNS};
use muds_ucc::{ducc, is_unique, naive_minimal_uccs, DuccConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureDetail {
    /// Stable invariant identifier — the failure signature used by the
    /// shrinker and in corpus file names.
    pub invariant: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// Everything one pipeline run produced that must be comparable across
/// pipelines and thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    fds: Vec<Fd>,
    uccs: Vec<ColumnSet>,
    inds: Vec<Ind>,
    counters: std::collections::BTreeMap<String, u64>,
    span_shape: Vec<String>,
}

fn span_names(nodes: &[muds_obs::SpanNode], depth: usize, out: &mut Vec<String>) {
    for n in nodes {
        out.push(format!("{}{}", "  ".repeat(depth), n.name));
        span_names(&n.children, depth + 1, out);
    }
}

/// Runs `algorithm` under a fresh metrics registry so inner counters never
/// leak into the ambient fuzz-loop registry.
fn fingerprint(table: &Table, algorithm: Algorithm, config: &ProfilerConfig) -> Fingerprint {
    let metrics = Metrics::new();
    let _guard = metrics.install();
    let result = profile(table, algorithm, config);
    let mut span_shape = Vec::new();
    span_names(&result.metrics.spans, 0, &mut span_shape);
    Fingerprint {
        fds: result.fds.to_sorted_vec(),
        uccs: result.minimal_uccs,
        inds: result.inds,
        counters: result.metrics.counters,
        span_shape,
    }
}

/// The differential + invariant check suite.
#[derive(Debug, Clone)]
pub struct CheckSuite {
    /// Profiler configuration shared by all pipeline runs.
    pub profiler: ProfilerConfig,
    /// Run the exponential naive oracles when the table has at most this
    /// many columns (they are hard-gated at 16).
    pub naive_max_cols: usize,
    /// Skip the naive oracles (and g₃ sweeps) above this row count.
    pub naive_max_rows: usize,
    /// Maximum arity for the n-ary IND projection-closure check.
    pub nary_arity: usize,
    /// Thread counts to cross-check for bit-identical results and
    /// counters; the pool is restored to `restore_threads` afterwards.
    pub thread_matrix: Vec<usize>,
    /// Thread count to restore after the matrix (0 = all cores).
    pub restore_threads: usize,
    /// Deltas per table for the incremental ≡ from-scratch invariant
    /// (0 disables it). Deltas are derived deterministically from the
    /// table fingerprint and [`CheckSuite::delta_seed`], so a banked
    /// corpus CSV regenerates the exact failing delta on replay — no
    /// separate delta file is needed.
    pub incremental_deltas: usize,
    /// Seed folded into the table fingerprint when deriving deltas.
    pub delta_seed: u64,
    /// Test hook for the shrinker self-test: deliberately drop the first
    /// FD from the MUDS result before comparing against the naive oracle,
    /// manufacturing a reproducible "missed FD" disagreement.
    pub sabotage_drop_first_fd: bool,
}

impl Default for CheckSuite {
    fn default() -> Self {
        CheckSuite {
            // Stats ride every pipeline run, so the json-roundtrip and
            // incremental invariants exercise the column-profile payload
            // for free; `check_stats` adds the naive second-pass oracle.
            profiler: ProfilerConfig { stats: true, ..ProfilerConfig::default() },
            naive_max_cols: 8,
            naive_max_rows: 64,
            nary_arity: 3,
            thread_matrix: vec![1, 2],
            restore_threads: 0,
            incremental_deltas: 2,
            delta_seed: 0xD1FA,
            sabotage_drop_first_fd: false,
        }
    }
}

impl CheckSuite {
    /// Runs every check on `table`, returning the first violated
    /// invariant. `None` means the table passed.
    pub fn check(&self, table: &Table) -> Option<FailureDetail> {
        self.check_pipelines(table)
            .or_else(|| self.check_thread_invariance(table))
            .or_else(|| self.check_naive_oracles(table))
            .or_else(|| self.check_fd_minimality(table))
            .or_else(|| self.check_ucc_minimality(table))
            .or_else(|| self.check_ucc_duality(table))
            .or_else(|| self.check_ind_projection_closure(table))
            .or_else(|| self.check_g3(table))
            .or_else(|| self.check_json_roundtrip(table))
            .or_else(|| self.check_stats(table))
            .or_else(|| self.check_incremental(table))
    }

    fn narrow(&self, table: &Table) -> bool {
        table.num_columns() <= self.naive_max_cols && table.num_rows() <= self.naive_max_rows
    }

    /// All four pipelines agree on FDs, UCCs, and INDs.
    fn check_pipelines(&self, table: &Table) -> Option<FailureDetail> {
        let runs: Vec<(Algorithm, Fingerprint)> =
            Algorithm::ALL.iter().map(|&a| (a, fingerprint(table, a, &self.profiler))).collect();
        for pair in runs.windows(2) {
            let [(a, fa), (b, fb)] = pair else { continue };
            if fa.fds != fb.fds {
                return Some(FailureDetail {
                    invariant: "pipelines-fd",
                    detail: format!(
                        "{} and {} disagree on FDs: {:?} vs {:?}",
                        a.name(),
                        b.name(),
                        fa.fds,
                        fb.fds
                    ),
                });
            }
            if fa.uccs != fb.uccs {
                return Some(FailureDetail {
                    invariant: "pipelines-ucc",
                    detail: format!(
                        "{} and {} disagree on UCCs: {:?} vs {:?}",
                        a.name(),
                        b.name(),
                        fa.uccs,
                        fb.uccs
                    ),
                });
            }
            if fa.inds != fb.inds {
                return Some(FailureDetail {
                    invariant: "pipelines-ind",
                    detail: format!(
                        "{} and {} disagree on INDs: {:?} vs {:?}",
                        a.name(),
                        b.name(),
                        fa.inds,
                        fb.inds
                    ),
                });
            }
        }
        None
    }

    /// Results AND counters are invariant under the worker-thread count.
    fn check_thread_invariance(&self, table: &Table) -> Option<FailureDetail> {
        if self.thread_matrix.len() < 2 {
            return None;
        }
        let mut failure = None;
        'outer: for &algorithm in &Algorithm::ALL {
            let mut reference: Option<(usize, Fingerprint)> = None;
            for &n in &self.thread_matrix {
                // lint:allow(panic): the fuzz harness owns the process;
                // if the vendored pool refuses to reconfigure, aborting the
                // campaign loudly beats fuzzing with the wrong thread count.
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build_global()
                    .expect("vendored rayon pool is reconfigurable");
                let run = fingerprint(table, algorithm, &self.profiler);
                match &reference {
                    None => reference = Some((n, run)),
                    Some((n0, reference)) if *reference != run => {
                        failure = Some(FailureDetail {
                            invariant: "thread-invariance",
                            detail: format!(
                                "{} differs between --threads {n0} and --threads {n} \
                                 (results, counters, or span shape)",
                                algorithm.name()
                            ),
                        });
                        break 'outer;
                    }
                    Some(_) => {}
                }
            }
        }
        // lint:allow(panic): same as above — restoring the ambient pool
        // must not fail silently mid-campaign.
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.restore_threads)
            .build_global()
            .expect("vendored rayon pool is reconfigurable");
        failure
    }

    /// MUDS agrees with the exponential ground-truth oracles.
    fn check_naive_oracles(&self, table: &Table) -> Option<FailureDetail> {
        if !self.narrow(table) {
            return None;
        }
        let run = fingerprint(table, Algorithm::Muds, &self.profiler);
        let mut fds = run.fds.clone();
        if self.sabotage_drop_first_fd && !fds.is_empty() {
            fds.remove(0); // deliberate mutation; see `sabotage_drop_first_fd`
        }
        let truth_fds = muds_fd::naive_minimal_fds(table).to_sorted_vec();
        if fds != truth_fds {
            return Some(FailureDetail {
                invariant: "naive-fd",
                detail: format!("MUDS FDs {fds:?} != naive {truth_fds:?}"),
            });
        }
        let truth_uccs = naive_minimal_uccs(table);
        if run.uccs != truth_uccs {
            return Some(FailureDetail {
                invariant: "naive-ucc",
                detail: format!("MUDS UCCs {:?} != naive {:?}", run.uccs, truth_uccs),
            });
        }
        let truth_inds = naive_inds(table);
        if run.inds != truth_inds {
            return Some(FailureDetail {
                invariant: "naive-ind",
                detail: format!("MUDS INDs {:?} != naive {:?}", run.inds, truth_inds),
            });
        }
        // ε = 0 approximate discovery is exact discovery.
        let mut cache = PliCache::new(table);
        let approx = approximate_fds(&mut cache, 0.0).to_sorted_vec();
        if approx != truth_fds {
            return Some(FailureDetail {
                invariant: "approx-eps0",
                detail: format!("approximate_fds(0.0) {approx:?} != naive {truth_fds:?}"),
            });
        }
        None
    }

    /// Every reported FD holds and no direct subset of its lhs does.
    fn check_fd_minimality(&self, table: &Table) -> Option<FailureDetail> {
        let run = fingerprint(table, Algorithm::Muds, &self.profiler);
        for fd in &run.fds {
            if !holds(table, &fd.lhs, fd.rhs) {
                return Some(FailureDetail {
                    invariant: "fd-validity",
                    detail: format!("reported FD {fd} does not hold"),
                });
            }
            for sub in fd.lhs.direct_subsets() {
                if holds(table, &sub, fd.rhs) {
                    return Some(FailureDetail {
                        invariant: "fd-minimality",
                        detail: format!("FD {fd} is not minimal: {sub:?} already determines"),
                    });
                }
            }
        }
        None
    }

    /// Every reported UCC is unique and no direct subset is.
    fn check_ucc_minimality(&self, table: &Table) -> Option<FailureDetail> {
        let run = fingerprint(table, Algorithm::Muds, &self.profiler);
        for ucc in &run.uccs {
            if !is_unique(table, ucc) {
                return Some(FailureDetail {
                    invariant: "ucc-validity",
                    detail: format!("reported UCC {ucc:?} is not unique"),
                });
            }
            for sub in ucc.direct_subsets() {
                if is_unique(table, &sub) {
                    return Some(FailureDetail {
                        invariant: "ucc-minimality",
                        detail: format!("UCC {ucc:?} is not minimal: {sub:?} already unique"),
                    });
                }
            }
        }
        None
    }

    /// DUCC's two result families are exact hypergraph duals: the minimal
    /// UCCs are the minimal hitting sets of the complements of the maximal
    /// non-UCCs, and every maximal non-UCC is non-unique with only unique
    /// direct supersets.
    fn check_ucc_duality(&self, table: &Table) -> Option<FailureDetail> {
        let universe = ColumnSet::full(table.num_columns());
        let mut cache = PliCache::new(table);
        let cfg = DuccConfig::default();
        let result = ducc(&mut cache, &cfg);
        let edges = complement_family(&result.maximal_non_uccs, &universe);
        let mut dual = minimal_hitting_sets(&edges, &universe);
        dual.sort();
        if dual != result.minimal_uccs {
            return Some(FailureDetail {
                invariant: "ucc-duality",
                detail: format!(
                    "minimal UCCs {:?} != minimal hitting sets {:?} of complemented maximal \
                     non-UCCs {:?}",
                    result.minimal_uccs, dual, result.maximal_non_uccs
                ),
            });
        }
        for mn in &result.maximal_non_uccs {
            if is_unique(table, mn) {
                return Some(FailureDetail {
                    invariant: "ucc-duality",
                    detail: format!("maximal non-UCC {mn:?} is actually unique"),
                });
            }
            for sup in mn.direct_supersets(&universe) {
                if !is_unique(table, &sup) {
                    return Some(FailureDetail {
                        invariant: "ucc-duality",
                        detail: format!("maximal non-UCC {mn:?} has non-unique superset {sup:?}"),
                    });
                }
            }
        }
        None
    }

    /// Every reported n-ary IND holds, and the set is closed under
    /// projection (the apriori property SPIDER's n-ary extension relies
    /// on).
    fn check_ind_projection_closure(&self, table: &Table) -> Option<FailureDetail> {
        if !self.narrow(table) {
            return None;
        }
        let inds = nary_inds(table, self.nary_arity);
        let seen: BTreeSet<(Vec<usize>, Vec<usize>)> =
            inds.iter().map(|i| (i.dependent.clone(), i.referenced.clone())).collect();
        for ind in &inds {
            if !nary_ind_holds(table, &ind.dependent, &ind.referenced) {
                return Some(FailureDetail {
                    invariant: "ind-validity",
                    detail: format!("reported n-ary IND {ind:?} does not hold"),
                });
            }
            if ind.arity() >= 2 {
                for drop in 0..ind.arity() {
                    let dep: Vec<usize> = without_index(&ind.dependent, drop);
                    let rf: Vec<usize> = without_index(&ind.referenced, drop);
                    if !seen.contains(&(dep.clone(), rf.clone())) {
                        return Some(FailureDetail {
                            invariant: "ind-projection",
                            detail: format!(
                                "projection {:?} ⊆ {:?} of reported IND {ind:?} is missing",
                                dep, rf
                            ),
                        });
                    }
                }
            }
        }
        None
    }

    /// The JSON wire format (shared by `profile --format json` and the
    /// serve daemon) round-trips: serializing a profile result and parsing
    /// it back reproduces the canonical payload exactly.
    fn check_json_roundtrip(&self, table: &Table) -> Option<FailureDetail> {
        let metrics = Metrics::new();
        let _guard = metrics.install();
        let result = profile(table, Algorithm::Muds, &self.profiler);
        let names = table.column_names();
        let json = profile_to_json(&result, table.name(), &names);
        let parsed = match profile_from_json(&json) {
            Ok(p) => p,
            Err(e) => {
                return Some(FailureDetail {
                    invariant: "json-roundtrip",
                    detail: format!("serialized profile does not parse back: {e}; json: {json}"),
                });
            }
        };
        let expected = ProfilePayload::from_result(&result, table.name(), &names);
        if parsed != expected {
            return Some(FailureDetail {
                invariant: "json-roundtrip",
                detail: format!("payload changed across the wire: {parsed:?} != {expected:?}"),
            });
        }
        None
    }

    /// Single-scan stats ≡ a naive second pass over the raw rows: exact
    /// distinct/null/min/max, exact length stats, entropy and moments
    /// within a tiny float tolerance, the dominant format an argmax of
    /// per-occurrence format detection, quality following the documented
    /// formula, quartiles within the sketch's documented rank-error bound
    /// (zero — i.e. exact — below 256 rows, which covers every generator),
    /// and the dependency classifications mirroring the discovered
    /// UCCs/INDs. Runs on every table: the oracle is `O(rows · cols)`.
    fn check_stats(&self, table: &Table) -> Option<FailureDetail> {
        use muds_core::{detect_format, QuantileSketch, ValueFormat};
        const TOL: f64 = 1e-9;
        let metrics = Metrics::new();
        let _guard = metrics.install();
        let config = ProfilerConfig { stats: true, ..self.profiler.clone() };
        let result = profile(table, Algorithm::Muds, &config);
        let Some(stats) = result.stats.as_ref() else {
            return Some(FailureDetail {
                invariant: "stats-oracle",
                detail: "stats requested but missing from the profile result".into(),
            });
        };
        if stats.columns.len() != table.num_columns() {
            return Some(FailureDetail {
                invariant: "stats-oracle",
                detail: format!(
                    "{} column profiles for {} columns",
                    stats.columns.len(),
                    table.num_columns()
                ),
            });
        }
        let rows = table.num_rows();
        let all_rows: Vec<Vec<Option<&str>>> = (0..rows).map(|r| table.row(r)).collect();
        for (c, got) in stats.columns.iter().enumerate() {
            let fail = |what: &str, detail: String| {
                Some(FailureDetail {
                    invariant: "stats-oracle",
                    detail: format!("column {c} {what}: {detail}"),
                })
            };
            let values: Vec<Option<&str>> = all_rows.iter().map(|r| r[c]).collect();
            let non_null_vals: Vec<&str> = values.iter().flatten().copied().collect();
            let nulls = (rows - non_null_vals.len()) as u64;
            let non_null = non_null_vals.len() as u64;
            let mut hist: std::collections::BTreeMap<&str, u64> = Default::default();
            for v in &non_null_vals {
                *hist.entry(v).or_default() += 1;
            }
            let distinct = hist.len() as u64;
            if got.column != c
                || got.rows != rows as u64
                || got.nulls != nulls
                || got.distinct != distinct
            {
                return fail(
                    "counts",
                    format!(
                        "got (rows {}, nulls {}, distinct {}), \
                         naive (rows {rows}, nulls {nulls}, distinct {distinct})",
                        got.rows, got.nulls, got.distinct
                    ),
                );
            }
            let min = hist.keys().next().copied();
            let max = hist.keys().next_back().copied();
            if got.min.as_deref() != min || got.max.as_deref() != max {
                return fail(
                    "extremes",
                    format!("got ({:?}, {:?}), naive ({min:?}, {max:?})", got.min, got.max),
                );
            }
            let null_fraction = if rows == 0 { 0.0 } else { nulls as f64 / rows as f64 };
            let distinct_fraction =
                if non_null == 0 { 0.0 } else { distinct as f64 / non_null as f64 };
            if got.null_fraction != null_fraction || got.distinct_fraction != distinct_fraction {
                return fail(
                    "fractions",
                    format!(
                        "got ({}, {}), naive ({null_fraction}, {distinct_fraction})",
                        got.null_fraction, got.distinct_fraction
                    ),
                );
            }
            let mut entropy = 0.0f64;
            let mut format_counts = [0u64; ValueFormat::ALL.len()];
            let mut min_length = u64::MAX;
            let mut max_length = 0u64;
            let mut length_sum = 0u64;
            for (v, &w) in &hist {
                let p = w as f64 / non_null as f64;
                entropy -= p * p.log2();
                format_counts[detect_format(v).index()] += w;
                let chars = v.chars().count() as u64;
                min_length = min_length.min(chars);
                max_length = max_length.max(chars);
                length_sum += w * chars;
            }
            if non_null == 0 {
                (entropy, min_length) = (0.0, 0);
            }
            let avg_length = if non_null == 0 { 0.0 } else { length_sum as f64 / non_null as f64 };
            if (got.entropy - entropy).abs() > TOL {
                return fail("entropy", format!("got {}, naive {entropy}", got.entropy));
            }
            if got.min_length != min_length
                || got.max_length != max_length
                || (got.avg_length - avg_length).abs() > TOL
            {
                return fail(
                    "lengths",
                    format!(
                        "got ({}, {}, {}), naive ({min_length}, {max_length}, {avg_length})",
                        got.min_length, got.max_length, got.avg_length
                    ),
                );
            }
            if non_null == 0 {
                if got.format != ValueFormat::Empty || got.format_consistency != 1.0 {
                    return fail(
                        "empty format",
                        format!("got ({:?}, {})", got.format, got.format_consistency),
                    );
                }
            } else {
                let got_count = format_counts[got.format.index()];
                if format_counts.iter().any(|&w| w > got_count) {
                    return fail(
                        "dominant format",
                        format!("{:?} ({got_count} occurrences) is not an argmax", got.format),
                    );
                }
                let consistency = got_count as f64 / non_null as f64;
                if (got.format_consistency - consistency).abs() > TOL {
                    return fail(
                        "format consistency",
                        format!("got {}, naive {consistency}", got.format_consistency),
                    );
                }
            }
            let quality = (2.0 * (1.0 - got.null_fraction) + got.format_consistency) / 3.0;
            if (got.quality - quality).abs() > TOL {
                return fail("quality", format!("got {}, formula {quality}", got.quality));
            }
            // Numeric moments + quartiles, gated exactly as documented:
            // present iff every non-NULL occurrence is a finite number.
            let mut parsed: Vec<f64> = Vec::with_capacity(non_null_vals.len());
            let mut fully_numeric = non_null > 0;
            for v in values.iter().flatten() {
                let x = match detect_format(v) {
                    ValueFormat::Integer | ValueFormat::Decimal => {
                        v.parse::<f64>().ok().filter(|x| x.is_finite())
                    }
                    _ => None,
                };
                match x {
                    Some(x) => parsed.push(x),
                    None => {
                        fully_numeric = false;
                        break;
                    }
                }
            }
            match (&got.numeric, fully_numeric) {
                (Some(_), false) => {
                    return fail("numeric gate", "present on a non-numeric column".into());
                }
                (None, true) => {
                    return fail("numeric gate", "missing on a fully numeric column".into());
                }
                (None, false) => {}
                (Some(n), true) => {
                    let count = parsed.len() as f64;
                    let sum: f64 = parsed.iter().sum();
                    let sum_sq: f64 = parsed.iter().map(|x| x * x).sum();
                    let mean = sum / count;
                    let variance = (sum_sq / count - mean * mean).max(0.0);
                    let naive_min = parsed.iter().copied().fold(f64::INFINITY, f64::min);
                    let naive_max = parsed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    if n.min != naive_min
                        || n.max != naive_max
                        || (n.mean - mean).abs() > TOL
                        || (n.variance - variance).abs() > TOL
                    {
                        return fail(
                            "moments",
                            format!(
                                "got (min {}, max {}, mean {}, var {}), \
                                 naive ({naive_min}, {naive_max}, {mean}, {variance})",
                                n.min, n.max, n.mean, n.variance
                            ),
                        );
                    }
                    // Rebuild the sketch over the same insertion sequence
                    // to obtain its documented rank-error bound, then hold
                    // the *reported* quartiles to it against the exactly
                    // sorted data.
                    let mut sketch = QuantileSketch::new();
                    for &x in &parsed {
                        sketch.insert(x);
                    }
                    let bound = sketch.rank_error_bound();
                    let mut sorted = parsed.clone();
                    sorted.sort_unstable_by(f64::total_cmp);
                    for (phi, q) in [(0.25, n.q25), (0.5, n.median), (0.75, n.q75)] {
                        let lo = sorted.partition_point(|&v| v < q) as u64;
                        let hi = sorted.partition_point(|&v| v <= q) as u64;
                        if lo == hi {
                            return fail(
                                "quantile",
                                format!("phi={phi}: reported {q} is not a data value"),
                            );
                        }
                        let target = ((phi * count).ceil() as u64).clamp(1, parsed.len() as u64);
                        let err = if target < lo { lo - target } else { target.saturating_sub(hi) };
                        if err > bound {
                            return fail(
                                "quantile",
                                format!("phi={phi}: rank error {err} exceeds bound {bound}"),
                            );
                        }
                    }
                }
            }
        }
        // Dependency classification mirrors the discovered UCCs/INDs.
        let expected_ids: BTreeSet<Vec<usize>> = result
            .minimal_uccs
            .iter()
            .filter(|u| u.cardinality() > 0)
            .map(|u| u.iter().collect())
            .collect();
        let got_ids: BTreeSet<Vec<usize>> =
            stats.identifiers.iter().map(|i| i.columns.clone()).collect();
        if got_ids != expected_ids {
            return Some(FailureDetail {
                invariant: "stats-classify",
                detail: format!(
                    "identifier candidates {got_ids:?} != non-empty minimal UCCs {expected_ids:?}"
                ),
            });
        }
        for pair in stats.identifiers.windows(2) {
            // lint:allow(panic): windows(2) always yields two elements.
            if pair[0].score < pair[1].score {
                return Some(FailureDetail {
                    invariant: "stats-classify",
                    detail: format!("identifier scores not descending: {pair:?}"),
                });
            }
        }
        for id in &stats.identifiers {
            let null_free = id.columns.iter().all(|&c| stats.columns[c].nulls == 0);
            let score = if null_free { 1.0 } else { 0.5 } / id.columns.len() as f64;
            if id.null_free != null_free || id.score != score {
                return Some(FailureDetail {
                    invariant: "stats-classify",
                    detail: format!(
                        "identifier {id:?}: expected null_free {null_free} score {score}"
                    ),
                });
            }
        }
        // lint:allow(panic): the filter pins u.len() == 1.
        let unary_keys: BTreeSet<usize> =
            expected_ids.iter().filter(|u| u.len() == 1).map(|u| u[0]).collect();
        let expected_fks: BTreeSet<(usize, usize)> = result
            .inds
            .iter()
            .filter(|i| i.dependent != i.referenced && unary_keys.contains(&i.referenced))
            .map(|i| (i.dependent, i.referenced))
            .collect();
        let got_fks: BTreeSet<(usize, usize)> =
            stats.foreign_keys.iter().map(|f| (f.dependent, f.referenced)).collect();
        if got_fks != expected_fks {
            return Some(FailureDetail {
                invariant: "stats-classify",
                detail: format!("FK candidates {got_fks:?} != keyed unary INDs {expected_fks:?}"),
            });
        }
        for fk in &stats.foreign_keys {
            let ref_distinct = stats.columns[fk.referenced].distinct;
            let coverage = if ref_distinct == 0 {
                1.0
            } else {
                stats.columns[fk.dependent].distinct as f64 / ref_distinct as f64
            };
            if fk.coverage != coverage {
                return Some(FailureDetail {
                    invariant: "stats-classify",
                    detail: format!("FK {fk:?}: expected coverage {coverage}"),
                });
            }
        }
        None
    }

    /// Incremental ≡ from-scratch: for every algorithm and a handful of
    /// deterministically derived deltas, patching a cached profile through
    /// [`apply_incremental`] must reproduce exactly the dependencies of
    /// profiling the patched table from scratch.
    fn check_incremental(&self, table: &Table) -> Option<FailureDetail> {
        if self.incremental_deltas == 0 || !self.narrow(table) || table.num_columns() == 0 {
            return None;
        }
        let fp = muds_table::fingerprint(table).0;
        let mut rng = StdRng::seed_from_u64(fp as u64 ^ (fp >> 64) as u64 ^ self.delta_seed);
        for _ in 0..self.incremental_deltas {
            let delta = random_delta(&mut rng, table);
            for &algorithm in &Algorithm::ALL {
                let metrics = Metrics::new();
                let _guard = metrics.install();
                let old = profile(table, algorithm, &self.profiler);
                let inc = match apply_incremental(&old, table, &delta) {
                    Ok(out) => out,
                    Err(e) => {
                        return Some(FailureDetail {
                            invariant: "incremental-apply",
                            detail: format!(
                                "{}: apply_incremental failed on {delta:?}: {e}",
                                algorithm.name()
                            ),
                        });
                    }
                };
                let scratch = profile(&inc.table, algorithm, &self.profiler);
                if inc.result.fds.to_sorted_vec() != scratch.fds.to_sorted_vec() {
                    return Some(FailureDetail {
                        invariant: "incremental-fd",
                        detail: format!(
                            "{}: incremental FDs {:?} != from-scratch {:?} after {delta:?}",
                            algorithm.name(),
                            inc.result.fds.to_sorted_vec(),
                            scratch.fds.to_sorted_vec()
                        ),
                    });
                }
                if inc.result.minimal_uccs != scratch.minimal_uccs {
                    return Some(FailureDetail {
                        invariant: "incremental-ucc",
                        detail: format!(
                            "{}: incremental UCCs {:?} != from-scratch {:?} after {delta:?}",
                            algorithm.name(),
                            inc.result.minimal_uccs,
                            scratch.minimal_uccs
                        ),
                    });
                }
                if inc.result.inds != scratch.inds {
                    return Some(FailureDetail {
                        invariant: "incremental-ind",
                        detail: format!(
                            "{}: incremental INDs {:?} != from-scratch {:?} after {delta:?}",
                            algorithm.name(),
                            inc.result.inds,
                            scratch.inds
                        ),
                    });
                }
                // Carried-or-recomputed column profiles must be
                // bit-identical to a from-scratch profile of the patched
                // table (both paths feed the same deterministic
                // accumulator in the same row order).
                if inc.result.stats != scratch.stats {
                    return Some(FailureDetail {
                        invariant: "incremental-stats",
                        detail: format!(
                            "{}: incremental stats {:?} != from-scratch {:?} after {delta:?}",
                            algorithm.name(),
                            inc.result.stats,
                            scratch.stats
                        ),
                    });
                }
            }
        }
        None
    }

    /// g₃ is monotonically non-increasing in the lhs, and zero exactly for
    /// FDs that hold.
    fn check_g3(&self, table: &Table) -> Option<FailureDetail> {
        if !self.narrow(table) {
            return None;
        }
        let n = table.num_columns();
        let mut cache = PliCache::new(table);
        let universe = ColumnSet::full(n);
        for a in 0..n {
            let mut bases: Vec<ColumnSet> = vec![ColumnSet::empty()];
            bases.extend(universe.without(a).iter().map(ColumnSet::single));
            for x in bases {
                let gx = g3_error(&mut cache, &x, a);
                let holds_exactly = table.num_rows() == 0 || cache.determines(&x, a);
                if (gx == 0.0) != holds_exactly {
                    return Some(FailureDetail {
                        invariant: "g3-zero-iff-holds",
                        detail: format!(
                            "g3({x:?} → {a}) = {gx} but determines() = {holds_exactly}"
                        ),
                    });
                }
                for b in universe.without(a).difference(&x).iter() {
                    let gxb = g3_error(&mut cache, &x.with(b), a);
                    if gxb > gx + 1e-12 {
                        return Some(FailureDetail {
                            invariant: "g3-monotone",
                            detail: format!(
                                "g3 grew when the lhs grew: g3({x:?} → {a}) = {gx} < \
                                 g3({:?} → {a}) = {gxb}",
                                x.with(b)
                            ),
                        });
                    }
                }
            }
        }
        None
    }
}

/// One adversarial delta: a small batch of appended rows mixing existing
/// values (to create collisions), fresh values, and NULLs — or a small
/// row-deletion batch (possibly with duplicate ids, which `apply_delta`
/// must tolerate).
fn random_delta(rng: &mut StdRng, table: &Table) -> TableDelta {
    let rows = table.num_rows();
    let cols = table.num_columns();
    if rows > 0 && rng.gen_bool(0.5) {
        let k = rng.gen_range(1..=rows.min(3));
        let dels: Vec<usize> = (0..k).map(|_| rng.gen_range(0..rows)).collect();
        TableDelta::Delete { rows: dels }
    } else {
        let k = rng.gen_range(1..=3usize);
        let appended = (0..k)
            .map(|_| {
                (0..cols)
                    .map(|c| {
                        if rows > 0 && rng.gen_bool(0.5) {
                            let source = rng.gen_range(0..rows);
                            table.row(source)[c].unwrap_or("").to_string()
                        } else if rng.gen_bool(0.25) {
                            String::new()
                        } else {
                            format!("δ{}", rng.gen_range(0..4u32))
                        }
                    })
                    .collect()
            })
            .collect();
        TableDelta::Append { rows: appended }
    }
}

fn without_index(v: &[usize], idx: usize) -> Vec<usize> {
    v.iter().enumerate().filter(|&(i, _)| i != idx).map(|(_, &x)| x).collect()
}

/// The ingestion guard at the `ColumnSet` boundary: any width above 256
/// must be rejected with the typed error before a `ColumnSet::insert` can
/// panic.
pub fn check_overwide_rejection(width: usize) -> Option<FailureDetail> {
    assert!(width > MAX_COLUMNS, "only meaningful above the boundary");
    let names: Vec<String> = (0..width).map(|i| format!("c{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<&str>> = vec![name_refs.clone()];
    match Table::from_rows("overwide", &name_refs, &rows) {
        Err(TableError::TooManyColumns { got, max }) if got == width && max == MAX_COLUMNS => {}
        other => {
            return Some(FailureDetail {
                invariant: "overwide-from-rows",
                detail: format!("from_rows({width} cols) returned {other:?}"),
            });
        }
    }
    // The CSV ingestion path must hit the same typed guard.
    let mut csv = names.join(",");
    csv.push('\n');
    csv.push_str(&names.join(","));
    csv.push('\n');
    match muds_table::table_from_csv("overwide", &csv, &muds_table::CsvOptions::default()) {
        Err(TableError::TooManyColumns { got, .. }) if got == width => None,
        other => Some(FailureDetail {
            invariant: "overwide-csv",
            detail: format!("table_from_csv({width} cols) returned {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wire-format round-trip must survive dataset and column names
    /// that need JSON escaping (quotes, backslashes, control characters,
    /// non-ASCII).
    /// Delta derivation is a pure function of table content: the same
    /// table (e.g. re-read from a corpus CSV) always yields the same
    /// deltas, so a banked repro regenerates its failing delta exactly.
    #[test]
    fn incremental_deltas_are_determined_by_table_content() {
        let rows = vec![vec!["1", "x"], vec!["2", "x"], vec!["3", "y"]];
        let a = Table::from_rows("t", &["p", "q"], &rows).unwrap();
        let b = Table::from_rows("t", &["p", "q"], &rows).unwrap();
        let suite = CheckSuite::default();
        let fp = muds_table::fingerprint(&a).0;
        let seed = fp as u64 ^ (fp >> 64) as u64 ^ suite.delta_seed;
        let mut ra = StdRng::seed_from_u64(seed);
        let mut rb = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            assert_eq!(
                format!("{:?}", random_delta(&mut ra, &a)),
                format!("{:?}", random_delta(&mut rb, &b))
            );
        }
        assert_eq!(suite.check_incremental(&a), None);
    }

    #[test]
    fn stats_oracle_accepts_adversarial_shapes() {
        let suite = CheckSuite::default();
        // Mixed formats, NULLs, numerics, duplicates, an FK pair.
        let t = Table::from_rows(
            "mixed",
            &["id", "ref", "num", "mix", "nul"],
            &[
                vec!["1", "1", "2.5", "a@b.co", ""],
                vec!["2", "1", "-3", "plain", ""],
                vec!["3", "2", "0.25", "2020-01-02", "x"],
            ],
        )
        .unwrap();
        assert_eq!(suite.check_stats(&t), None);
        // Degenerate shapes.
        for rows in [vec![], vec![vec!["", ""]], vec![vec!["k", "k"]]] {
            let t = Table::from_rows("d", &["a", "b"], &rows).unwrap();
            assert_eq!(suite.check_stats(&t), None);
        }
    }

    #[test]
    fn json_roundtrip_survives_hostile_names() {
        let cols = ["a\"quote", "b\\slash", "c\tcontrol", "déjà"];
        let rows =
            vec![vec!["1", "x", "p", "m"], vec!["2", "x", "q", "m"], vec!["3", "y", "q", "n"]];
        let table = Table::from_rows("na\"me\n", &cols, &rows).unwrap();
        let suite = CheckSuite::default();
        assert_eq!(suite.check_json_roundtrip(&table), None);
    }
}
