//! Delta-debugging shrinker: reduces a failing table to a minimal repro
//! while preserving the failure signature.
//!
//! Three reduction passes run to a fixpoint: ddmin over rows (drop
//! half-sized chunks, halving the chunk size down to single rows), then
//! single-column drops, then value merging (collapse each column's value
//! domain towards its first distinct value). Every candidate is accepted
//! only if the caller's predicate still reports the *same* failure.

use muds_table::Table;

/// Budget for predicate evaluations; shrinking stops when exhausted. Each
/// evaluation re-runs the full check suite, so this bounds total work.
const MAX_CANDIDATES: usize = 5_000;

/// What the shrinker did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate tables offered to the predicate.
    pub candidates_tried: usize,
    /// Candidates the predicate accepted (still failing).
    pub accepted: usize,
}

/// Row-major working copy of a table (NULL = empty string, matching the
/// profiler's NULL encoding).
#[derive(Clone, PartialEq)]
struct Matrix {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Matrix {
    fn from_table(table: &Table) -> Matrix {
        Matrix {
            name: table.name().to_string(),
            columns: table.column_names().iter().map(|s| s.to_string()).collect(),
            rows: (0..table.num_rows())
                .map(|r| table.row(r).into_iter().map(|v| v.unwrap_or("").to_string()).collect())
                .collect(),
        }
    }

    fn to_table(&self) -> Table {
        let names: Vec<&str> = self.columns.iter().map(|s| s.as_str()).collect();
        // lint:allow(panic): shrink candidates are produced only by
        // removing rows/columns from a table that already validated; a
        // malformed candidate is a shrinker bug worth a loud abort.
        Table::from_rows(&self.name, &names, &self.rows)
            .expect("shrink candidates are well-formed by construction")
    }

    fn without_rows(&self, start: usize, len: usize) -> Matrix {
        let mut m = self.clone();
        m.rows.drain(start..(start + len).min(m.rows.len()));
        m
    }

    fn without_column(&self, col: usize) -> Matrix {
        let mut m = self.clone();
        m.columns.remove(col);
        for row in &mut m.rows {
            row.remove(col);
        }
        m
    }
}

/// Reduces `table` to a locally minimal failing input. `still_fails` must
/// return `true` iff the candidate reproduces the original failure (same
/// invariant); the input table is assumed to fail already.
pub fn shrink(table: &Table, still_fails: &mut dyn FnMut(&Table) -> bool) -> (Table, ShrinkStats) {
    let mut stats = ShrinkStats::default();
    let mut current = Matrix::from_table(table);

    // One guarded predicate call; returns None once the budget is gone.
    let mut accept = |candidate: &Matrix, stats: &mut ShrinkStats| -> Option<bool> {
        if stats.candidates_tried >= MAX_CANDIDATES {
            return None;
        }
        stats.candidates_tried += 1;
        let ok = still_fails(&candidate.to_table());
        if ok {
            stats.accepted += 1;
        }
        Some(ok)
    };

    loop {
        let before = current.clone();

        // Pass 1: ddmin over rows.
        let mut chunk = (current.rows.len() / 2).max(1);
        while chunk >= 1 && !current.rows.is_empty() {
            let mut start = 0;
            while start < current.rows.len() {
                let candidate = current.without_rows(start, chunk);
                match accept(&candidate, &mut stats) {
                    Some(true) => current = candidate, // same start: next chunk slid in
                    Some(false) => start += chunk,
                    None => return (current.to_table(), stats),
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: drop whole columns.
        let mut col = 0;
        while col < current.columns.len() {
            let candidate = current.without_column(col);
            match accept(&candidate, &mut stats) {
                Some(true) => current = candidate, // same index now names the next column
                Some(false) => col += 1,
                None => return (current.to_table(), stats),
            }
        }

        // Pass 3: merge values — rewrite each distinct value to the
        // column's first distinct value, one value at a time.
        for col in 0..current.columns.len() {
            let mut seen: Vec<String> = Vec::new();
            for row in &current.rows {
                if !seen.contains(&row[col]) {
                    seen.push(row[col].clone());
                }
            }
            let Some(first) = seen.first().cloned() else { continue };
            for victim in seen.into_iter().skip(1) {
                let mut candidate = current.clone();
                for row in &mut candidate.rows {
                    if row[col] == victim {
                        row[col] = first.clone();
                    }
                }
                match accept(&candidate, &mut stats) {
                    Some(true) => current = candidate,
                    Some(false) => {}
                    None => return (current.to_table(), stats),
                }
            }
        }

        if current == before {
            return (current.to_table(), stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[[&str; 3]]) -> Table {
        let data: Vec<Vec<&str>> = rows.iter().map(|r| r.to_vec()).collect();
        Table::from_rows("t", &["a", "b", "c"], &data).unwrap()
    }

    #[test]
    fn shrinks_to_the_failure_core() {
        // "Fails" whenever column b still contains the value "bad".
        let t = table(&[
            ["1", "x", "p"],
            ["2", "bad", "q"],
            ["3", "y", "r"],
            ["4", "bad", "s"],
            ["5", "z", "t"],
        ]);
        let mut pred =
            |cand: &Table| (0..cand.num_rows()).any(|r| cand.row(r).contains(&Some("bad")));
        let (small, stats) = shrink(&t, &mut pred);
        assert_eq!(small.num_rows(), 1, "one witness row suffices");
        assert_eq!(small.num_columns(), 1, "one witness column suffices");
        assert_eq!(small.row(0), vec![Some("bad")]);
        assert!(stats.accepted > 0);
        assert!(stats.candidates_tried < MAX_CANDIDATES);
    }

    #[test]
    fn merging_values_simplifies_domains() {
        // Fails whenever the first column has ≥2 rows (value-independent),
        // so the shrinker should also collapse the value domain.
        let t = table(&[["1", "x", "p"], ["2", "y", "q"], ["3", "z", "r"]]);
        let mut pred = |cand: &Table| cand.num_rows() >= 2 && cand.num_columns() >= 1;
        let (small, _) = shrink(&t, &mut pred);
        assert_eq!(small.num_rows(), 2);
        assert_eq!(small.num_columns(), 1);
        // Both surviving cells merged to one value.
        assert_eq!(small.row(0), small.row(1));
    }

    #[test]
    fn zero_row_tables_shrink_without_panicking() {
        let t = Table::from_rows("t", &["a"], &Vec::<Vec<&str>>::new()).unwrap();
        let mut pred = |_: &Table| true;
        let (small, _) = shrink(&t, &mut pred);
        assert_eq!(small.num_rows(), 0);
        assert_eq!(small.num_columns(), 0, "the lone column is droppable");
    }
}
