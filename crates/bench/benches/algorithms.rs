//! End-to-end algorithm benchmarks on fixed small datasets — the per-cell
//! microscope behind the Table 3 harness. Also covers the ablations:
//! MUDS with/without known-FD pruning (A2) and with/without the exactness
//! sweep (paper-faithful mode).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use muds_core::{baseline, holistic_fun, muds, MudsConfig};
use muds_datagen::{ionosphere_like, ncvoter_like, uci_dataset, uniprot_like};
use muds_pli::PliCache;
use muds_table::Table;

fn bench_all_algorithms(c: &mut Criterion, label: &str, table: &Table) {
    let mut group = c.benchmark_group(label);
    group.sample_size(10);

    group.bench_function("baseline", |b| b.iter(|| baseline(black_box(table), 42)));
    group.bench_function("holistic_fun", |b| b.iter(|| holistic_fun(black_box(table))));
    group.bench_function("muds", |b| b.iter(|| muds(black_box(table), &MudsConfig::default())));
    group.bench_function("tane", |b| {
        b.iter(|| {
            let mut cache = PliCache::new(table);
            muds_fd::tane(&mut cache)
        })
    });
    group.finish();
}

fn datasets(c: &mut Criterion) {
    bench_all_algorithms(c, "iris_150x5", &uci_dataset("iris"));
    bench_all_algorithms(c, "uniprot_like_1000x8", &uniprot_like(1_000, 8));
    bench_all_algorithms(c, "ncvoter_like_600x10", &ncvoter_like(600, 10));
    bench_all_algorithms(c, "ionosphere_like_12", &ionosphere_like(12));
}

fn muds_ablations(c: &mut Criterion) {
    let table = ncvoter_like(800, 10);
    let mut group = c.benchmark_group("muds_ablations_ncvoter_800x10");
    group.sample_size(10);

    group.bench_function("default", |b| b.iter(|| muds(black_box(&table), &MudsConfig::default())));
    group.bench_function("no_known_fd_pruning", |b| {
        let cfg = MudsConfig { use_known_fd_pruning: false, ..MudsConfig::default() };
        b.iter(|| muds(black_box(&table), &cfg))
    });
    group.bench_function("paper_faithful_no_sweep", |b| {
        let cfg = MudsConfig { completion_sweep: false, ..MudsConfig::default() };
        b.iter(|| muds(black_box(&table), &cfg))
    });
    group.bench_function("generous_shadow_lookup", |b| {
        let cfg = MudsConfig {
            shadow_lookup: muds_core::ShadowLookup::Generous,
            ..MudsConfig::default()
        };
        b.iter(|| muds(black_box(&table), &cfg))
    });
    group.finish();
}

criterion_group!(benches, datasets, muds_ablations);
criterion_main!(benches);
