//! Criterion micro-benchmarks for the substrate data structures:
//! PLI construction and intersection (the dominant cost of partition-based
//! profiling, §6.4), the §5.4 prefix tree vs a linear scan (ablation A1),
//! MMCS hitting sets (DUCC hole filling and Algorithm 3), and apriori-gen.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use muds_datagen::{ncvoter_like, uniprot_like};
use muds_lattice::{apriori_gen, first_level, minimal_hitting_sets, ColumnSet, SetTrie};
use muds_pli::{Pli, PliCache};
use rand::prelude::*;

fn bench_pli(c: &mut Criterion) {
    let table = uniprot_like(20_000, 10);
    let mut group = c.benchmark_group("pli");
    group.sample_size(20);

    group.bench_function("build_single_column_20k_rows", |b| {
        b.iter(|| Pli::from_column(black_box(table.column(3))))
    });

    let p3 = Pli::from_column(table.column(3));
    let p5 = Pli::from_column(table.column(5));
    group.bench_function("intersect_20k_rows", |b| b.iter(|| p3.intersect(black_box(&p5))));

    group.bench_function("refinement_check_20k_rows", |b| {
        b.iter(|| p3.refines(black_box(table.column(4).codes())))
    });

    group.bench_function("cache_composed_lookup", |b| {
        b.iter_batched(
            || PliCache::new(&table),
            |mut cache| {
                let set = ColumnSet::from_indices([3, 5, 7]);
                black_box(cache.get(&set));
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_set_trie(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let sets: Vec<ColumnSet> = (0..2_000)
        .map(|_| {
            let k = rng.gen_range(2..=5);
            ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..40)))
        })
        .collect();
    let trie = SetTrie::from_sets(sets.iter().copied());
    let queries: Vec<ColumnSet> = (0..256)
        .map(|_| {
            let k = rng.gen_range(4..=10);
            ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..40)))
        })
        .collect();

    let mut group = c.benchmark_group("set_trie_vs_scan_2000_sets");
    group.bench_function("prefix_tree_subsets", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries {
                hits += trie.subsets_of(black_box(q)).len();
            }
            hits
        })
    });
    group.bench_function("linear_scan_subsets", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries {
                hits += sets.iter().filter(|s| s.is_subset_of(black_box(q))).count();
            }
            hits
        })
    });
    group.bench_function("prefix_tree_supersets_connector", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries {
                let connector = ColumnSet::from_indices(q.iter().take(2));
                hits += trie.supersets_of(black_box(&connector)).len();
            }
            hits
        })
    });
    group.finish();
}

fn bench_hitting_sets(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let universe = ColumnSet::full(20);
    let edges: Vec<ColumnSet> = (0..18)
        .map(|_| {
            let k = rng.gen_range(2..=5);
            ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..20)))
        })
        .collect();
    c.bench_function("mmcs_minimal_hitting_sets_18_edges", |b| {
        b.iter(|| minimal_hitting_sets(black_box(&edges), black_box(&universe)))
    });
}

fn bench_apriori(c: &mut Criterion) {
    let level2 = apriori_gen(&first_level(&ColumnSet::full(18)));
    c.bench_function("apriori_gen_level3_of_18_columns", |b| {
        b.iter(|| apriori_gen(black_box(&level2)))
    });
}

fn bench_spider(c: &mut Criterion) {
    let table = ncvoter_like(10_000, 12);
    c.bench_function("spider_10k_rows_12_cols", |b| b.iter(|| muds_ind::spider(black_box(&table))));
}

criterion_group!(
    benches,
    bench_pli,
    bench_set_trie,
    bench_hitting_sets,
    bench_apriori,
    bench_spider
);
criterion_main!(benches);
