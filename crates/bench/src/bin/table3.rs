//! Table 3: runtime comparison on eleven real-world (UCI) datasets with
//! baseline, Holistic FUN, MUDS, and TANE.
//!
//! Paper shape to reproduce:
//! * Holistic FUN always beats the sequential baseline (shared scan);
//! * MUDS wins once datasets have ≥ ~14 columns / FDs with large left-hand
//!   sides (adult: 12×, letter: 48× over HFUN in the paper);
//! * TANE can beat MUDS where shadowed FDs explode (hepatitis);
//! * the discovered FD counts per dataset are reported alongside.
//!
//! Usage: `cargo run -p muds-bench --release --bin table3 [--paper-faithful]
//! [--dataset NAME]`

use muds_bench::{
    arg_flag, assert_consistent, init_threads, measure, print_table, secs, MetricsSidecar,
};
use muds_core::{Algorithm, ProfilerConfig};
use muds_datagen::{uci_dataset, TABLE3_DATASETS};

fn main() {
    init_threads();
    let mut config = ProfilerConfig::default();
    if arg_flag("--paper-faithful") {
        config.muds.completion_sweep = false;
    }
    let only: Option<String> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--dataset").and_then(|i| args.get(i + 1).cloned())
    };

    println!("Table 3 — runtime comparison on 11 UCI-like datasets");
    println!("paper: HFUN ≥ baseline always; MUDS wins on wide datasets; TANE wins on hepatitis\n");

    let mut rows_out = Vec::new();
    let mut sidecar = MetricsSidecar::for_bin("table3");
    for name in TABLE3_DATASETS {
        if let Some(ref o) = only {
            if o != name {
                continue;
            }
        }
        let t = uci_dataset(name);
        let ms = measure(&t, &Algorithm::ALL, &config);
        assert_consistent(&ms);
        sidecar.record_all(name, &ms);
        let fds = ms[0].result.fds.len();
        rows_out.push(vec![
            name.to_string(),
            t.num_columns().to_string(),
            t.num_rows().to_string(),
            fds.to_string(),
            secs(ms[0].elapsed), // baseline
            secs(ms[1].elapsed), // HFUN
            secs(ms[2].elapsed), // MUDS
            secs(ms[3].elapsed), // TANE
        ]);
        eprintln!("  ..done {name}");
    }
    print_table(&["dataset", "cols", "rows", "FDs", "baseline", "HFUN", "MUDS", "TANE"], &rows_out);
    sidecar.write();
}
