//! Figure 7: scalability with regard to the number of columns (ionosphere,
//! 351 rows, 10–23 columns), including the discovered dependency counts.
//!
//! Paper shape to reproduce: execution times grow exponentially with the
//! column count for every algorithm; **MUDS scales clearly best** because
//! its UCC-first, depth-first strategy reaches the large minimal FDs
//! without the level-wise blow-up; baseline ≈ Holistic FUN (both spend
//! ~99% of the time in FD discovery). Dependency counts explode with the
//! column count.
//!
//! The default sweep stops at 16 columns (the level-wise algorithms
//! genuinely explode beyond that, exactly as in the paper, where 23
//! columns took the baseline >4000 s); pass `--max-cols 23` to reproduce
//! the full range if you have the patience.
//!
//! Usage: `cargo run -p muds-bench --release --bin fig7 [--max-cols N]
//! [--paper-faithful]`

use muds_bench::{
    arg_flag, arg_usize, assert_consistent, init_threads, measure, print_table, secs,
    MetricsSidecar,
};
use muds_core::{Algorithm, ProfilerConfig};
use muds_datagen::ionosphere_like;

fn main() {
    init_threads();
    let max_cols = arg_usize("--max-cols", 16);
    let mut config = ProfilerConfig::default();
    if arg_flag("--paper-faithful") {
        config.muds.completion_sweep = false;
    }
    let algorithms = [Algorithm::Baseline, Algorithm::HolisticFun, Algorithm::Muds];

    println!("Figure 7 — column scalability on ionosphere-like data (351 rows)");
    println!("paper: exponential growth for all; MUDS flattest; counts explode\n");

    let col_steps: Vec<usize> = [10usize, 12, 14, 15, 16, 18, 20, 21, 22, 23]
        .iter()
        .copied()
        .filter(|&c| c <= max_cols)
        .collect();
    let full = ionosphere_like(max_cols);
    let mut rows_out = Vec::new();
    let mut sidecar = MetricsSidecar::for_bin("fig7");
    for &cols in &col_steps {
        let t = full.take_columns(cols);
        let ms = measure(&t, &algorithms, &config);
        assert_consistent(&ms);
        sidecar.record_all(&format!("cols={cols}"), &ms);
        let (inds, uccs, fds) = ms[2].result.counts();
        rows_out.push(vec![
            cols.to_string(),
            secs(ms[0].elapsed),
            secs(ms[1].elapsed),
            secs(ms[2].elapsed),
            inds.to_string(),
            uccs.to_string(),
            fds.to_string(),
        ]);
        eprintln!("  ..done {cols} columns");
    }
    print_table(&["cols", "baseline", "HFUN", "MUDS", "#INDs", "#UCCs", "#FDs"], &rows_out);
    sidecar.write();
}
