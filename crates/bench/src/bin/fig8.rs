//! Figure 8: runtime of MUDS' phases on ncvoter-like data (10,000 rows,
//! 20 columns).
//!
//! Paper shape to reproduce: SPIDER and DUCC almost negligible; the two
//! shadowed-FD phases dominate (≈22× the earlier phases combined), with
//! PLI-based FD checks consuming most of that time.
//!
//! Three MUDS configurations are reported, because the comparison exposes
//! a reproduction finding (DESIGN.md §6): the paper's single-pass
//! exact-lhs shadow look-up is cheap but misses a large share of the
//! minimal FDs on this dataset family; the wider *generous* look-up
//! reproduces the paper's shadow-dominated profile; the default *exact*
//! configuration adds the completion sweep, whose cost then takes the
//! place of the missing shadow work.
//!
//! Usage: `cargo run -p muds-bench --release --bin fig8 [--rows N] [--cols N]`

use muds_bench::{arg_usize, init_threads, print_table, secs, MetricsSidecar};
use muds_core::{muds, MudsConfig, ShadowLookup};
use muds_datagen::ncvoter_like;
use muds_obs::Metrics;

fn main() {
    init_threads();
    let rows = arg_usize("--rows", 10_000);
    let cols = arg_usize("--cols", 20);

    println!("Figure 8 — MUDS phase breakdown on ncvoter-like data ({rows} rows, {cols} columns)");
    println!("paper: SPIDER/DUCC negligible; shadowed-FD phases dominate\n");

    let t = ncvoter_like(rows, cols);
    let configs = [
        (
            "paper-faithful (exact-lhs look-up, single pass, no sweep)",
            MudsConfig {
                shadow_lookup: ShadowLookup::Faithful,
                completion_sweep: false,
                ..MudsConfig::default()
            },
        ),
        (
            "generous shadow look-up (closure + fixpoint, no sweep)",
            MudsConfig {
                shadow_lookup: ShadowLookup::Generous,
                completion_sweep: false,
                ..MudsConfig::default()
            },
        ),
        ("exact (default: faithful look-up + completion sweep)", MudsConfig::default()),
    ];

    let metrics = Metrics::new();
    let _guard = metrics.install();
    let mut sidecar = MetricsSidecar::for_bin("fig8");
    for (label, config) in configs {
        println!("=== {label} ===");
        let report = muds(&t, &config);
        sidecar.record(label, "MUDS", &metrics.drain_snapshot());
        let total = report.timings.total();
        let rows_out: Vec<Vec<String>> = report
            .timings
            .as_rows()
            .into_iter()
            .map(|(name, d)| {
                vec![
                    name.to_string(),
                    secs(d),
                    format!("{:.1}%", 100.0 * d.as_secs_f64() / total.as_secs_f64().max(1e-9)),
                ]
            })
            .collect();
        print_table(&["phase", "time", "share"], &rows_out);
        println!(
            "totals: {} INDs, {} minimal UCCs, {} minimal FDs in {}",
            report.inds.len(),
            report.minimal_uccs.len(),
            report.fds.len(),
            secs(total)
        );
        println!(
            "work:   {} PLI intersects, {} refinement checks, {} shadow tasks ({} rounds)\n",
            report.stats.pli.intersects,
            report.stats.pli.refinement_checks,
            report.stats.shadowed.tasks_generated,
            report.stats.shadowed.rounds
        );
    }
    sidecar.write();
}
