//! Ablation studies for the design choices DESIGN.md calls out (A1–A3):
//!
//! * **A1 — prefix tree vs linear scan** for minimal-UCC subset look-ups
//!   (§5.4 of the paper motivates the tree by the cost of the naïve scan);
//! * **A2 — known-FD pruning** in the R\Z sub-lattice walks (§5.2's
//!   inter-task pruning rule);
//! * **A3 — shared scan & PLIs vs per-task rebuild** (the holistic-vs-
//!   sequential cost gap isolated from algorithmic differences);
//! * plus the cost of our exactness sweep (the paper-deviation knob).
//!
//! Usage: `cargo run -p muds-bench --release --bin ablation`

use std::time::Instant;

use muds_bench::{init_threads, print_table, secs, MetricsSidecar};
use muds_core::{baseline, holistic_fun, muds, MudsConfig};
use muds_datagen::{ncvoter_like, uci_dataset, uniprot_like};
use muds_lattice::{ColumnSet, SetTrie};
use muds_obs::Metrics;
use rand::prelude::*;

fn main() {
    init_threads();
    let metrics = Metrics::new();
    let _guard = metrics.install();
    let mut sidecar = MetricsSidecar::for_bin("ablation");
    a1_prefix_tree(&metrics, &mut sidecar);
    a2_known_fd_pruning(&metrics, &mut sidecar);
    a3_shared_structures(&metrics, &mut sidecar);
    sweep_cost(&metrics, &mut sidecar);
    sidecar.write();
}

/// A1: subset look-ups against a set of "minimal UCCs" — trie vs scan.
fn a1_prefix_tree(metrics: &Metrics, sidecar: &mut MetricsSidecar) {
    println!("A1 — §5.4 prefix tree vs linear scan (subset look-ups)\n");
    let mut rng = StdRng::seed_from_u64(41);
    let mut rows = Vec::new();
    for &(n_sets, n_cols) in &[(100usize, 30usize), (1_000, 40), (10_000, 60)] {
        let mut sets: Vec<ColumnSet> = (0..n_sets)
            .map(|_| {
                let k = rng.gen_range(2..=5);
                ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..n_cols)))
            })
            .collect();
        // The trie stores each set once; deduplicate so both sides count
        // the same matches.
        sets.sort();
        sets.dedup();
        let trie = SetTrie::from_sets(sets.iter().copied());
        let queries: Vec<ColumnSet> = (0..10_000)
            .map(|_| {
                let k = rng.gen_range(3..=10);
                ColumnSet::from_indices((0..k).map(|_| rng.gen_range(0..n_cols)))
            })
            .collect();

        let t0 = Instant::now();
        let mut hits_trie = 0usize;
        for q in &queries {
            hits_trie += trie.subsets_of(q).len();
        }
        let trie_time = t0.elapsed();

        let t0 = Instant::now();
        let mut hits_scan = 0usize;
        for q in &queries {
            hits_scan += sets.iter().filter(|s| s.is_subset_of(q)).count();
        }
        let scan_time = t0.elapsed();
        assert_eq!(hits_trie, hits_scan);

        rows.push(vec![
            n_sets.to_string(),
            secs(trie_time),
            secs(scan_time),
            format!("{:.1}x", scan_time.as_secs_f64() / trie_time.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(&["stored sets", "prefix tree", "linear scan", "speedup"], &rows);
    println!();
    sidecar.record("A1 trie micro-benchmark", "trie", &metrics.drain_snapshot());
}

/// A2: MUDS with and without the known-FD reduction in the R\Z walks.
fn a2_known_fd_pruning(metrics: &Metrics, sidecar: &mut MetricsSidecar) {
    println!("A2 — §5.2 known-FD pruning in the R\\Z sub-lattice walks\n");
    // uniprot-like data keeps most annotation columns outside Z, so the
    // R\Z walks actually run (ncvoter-like has Z = all columns).
    let t = uniprot_like(20_000, 10);
    let mut rows = Vec::new();
    for (label, pruning) in [("with pruning", true), ("without pruning", false)] {
        let config = MudsConfig { use_known_fd_pruning: pruning, ..MudsConfig::default() };
        let t0 = Instant::now();
        let report = muds(&t, &config);
        let elapsed = t0.elapsed();
        sidecar.record(&format!("A2 {label}"), "MUDS", &metrics.drain_snapshot());
        rows.push(vec![
            label.to_string(),
            secs(elapsed),
            secs(report.timings.calculate_rz),
            report.stats.rz.walk.oracle_calls.to_string(),
            report.stats.rz.reductions.to_string(),
        ]);
    }
    print_table(&["config", "total", "R\\Z phase", "oracle calls", "reductions"], &rows);
    println!();
}

/// A3: shared scan + shared PLIs (holistic) vs per-task rebuild
/// (sequential), with the FD/UCC algorithms held identical (FUN).
fn a3_shared_structures(metrics: &Metrics, sidecar: &mut MetricsSidecar) {
    println!("A3 — §3 shared scan & data structures vs per-task rebuild\n");
    let t = uci_dataset("adult");
    let mut rows = Vec::new();

    let t0 = Instant::now();
    let _ = holistic_fun(&t);
    let shared = t0.elapsed();
    sidecar.record("A3 shared", "HFUN", &metrics.drain_snapshot());
    rows.push(vec!["holistic (shared)".into(), secs(shared)]);

    let t0 = Instant::now();
    let _ = baseline(&t, 42);
    let sequential = t0.elapsed();
    sidecar.record("A3 rebuilds", "baseline", &metrics.drain_snapshot());
    rows.push(vec!["sequential (rebuilds)".into(), secs(sequential)]);
    rows.push(vec![
        "sequential / holistic".into(),
        format!("{:.2}x", sequential.as_secs_f64() / shared.as_secs_f64().max(1e-9)),
    ]);
    print_table(&["config", "time"], &rows);
    println!();
}

/// Cost of the exactness sweep (our deviation from the paper).
fn sweep_cost(metrics: &Metrics, sidecar: &mut MetricsSidecar) {
    println!("Exactness sweep cost (paper-faithful vs exact MUDS)\n");
    let t = ncvoter_like(5_000, 16);
    let mut rows = Vec::new();
    for (label, sweep) in [("paper-faithful", false), ("with sweep (default)", true)] {
        let config = MudsConfig { completion_sweep: sweep, ..MudsConfig::default() };
        let t0 = Instant::now();
        let report = muds(&t, &config);
        let elapsed = t0.elapsed();
        sidecar.record(&format!("sweep {label}"), "MUDS", &metrics.drain_snapshot());
        rows.push(vec![
            label.to_string(),
            secs(elapsed),
            secs(report.timings.completion_sweep),
            report.fds.len().to_string(),
        ]);
    }
    print_table(&["config", "total", "sweep time", "FDs"], &rows);
}
