//! Figure 6: scalability with regard to the number of rows (uniprot, 10
//! columns, 50k–250k rows).
//!
//! Paper shape to reproduce: all three algorithms scale ≈linearly with the
//! row count; **Holistic FUN is fastest** (≈1/3 faster than the baseline,
//! thanks to the shared input scan and joint UCC discovery); **MUDS is
//! slowest** on this dataset because the shadowed-FD phase is expensive and
//! also scales with rows.
//!
//! Usage: `cargo run -p muds-bench --release --bin fig6 [--max-rows N]
//! [--cols N] [--paper-faithful]`

use muds_bench::{
    arg_flag, arg_usize, assert_consistent, init_threads, measure, print_table, secs,
    MetricsSidecar,
};
use muds_core::{Algorithm, ProfilerConfig};
use muds_datagen::uniprot_like;

fn main() {
    init_threads();
    let cols = arg_usize("--cols", 10);
    let max_rows = arg_usize("--max-rows", 250_000);
    let mut config = ProfilerConfig::default();
    if arg_flag("--paper-faithful") {
        config.muds.completion_sweep = false;
    }
    let algorithms = [Algorithm::Baseline, Algorithm::HolisticFun, Algorithm::Muds];

    println!("Figure 6 — row scalability on uniprot-like data ({cols} columns)");
    println!("paper: all linear in rows; HFUN fastest (~2/3 of baseline); MUDS slowest\n");

    let full = uniprot_like(max_rows, cols);
    let steps = 5;
    let mut rows_out = Vec::new();
    let mut sidecar = MetricsSidecar::for_bin("fig6");
    for step in 1..=steps {
        let n = max_rows * step / steps;
        let t = full.take_rows(n);
        let ms = measure(&t, &algorithms, &config);
        assert_consistent(&ms);
        sidecar.record_all(&format!("rows={n}"), &ms);
        let (inds, uccs, fds) = ms[0].result.counts();
        rows_out.push(vec![
            n.to_string(),
            secs(ms[0].elapsed),
            secs(ms[1].elapsed),
            secs(ms[2].elapsed),
            inds.to_string(),
            uccs.to_string(),
            fds.to_string(),
        ]);
        eprintln!("  ..done {n} rows");
    }
    print_table(&["rows", "baseline", "HFUN", "MUDS", "#INDs", "#UCCs", "#FDs"], &rows_out);
    sidecar.write();
}
