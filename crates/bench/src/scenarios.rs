//! The fixed scenario matrix behind `mudsprof bench`.
//!
//! Five profiling scenarios (3 datagen shapes × 4 algorithms, each entry
//! tagged holistic vs sequential) plus one serve round-trip scenario that
//! boots a real `muds-serve` daemon on an ephemeral port and measures
//! register/miss/hit latencies over actual sockets. Scenario names are
//! stable identifiers: they key `BENCH_<scenario>.json` files and the CI
//! regression diff, so renaming one orphans its committed baseline.
//!
//! Timing discipline (enforced by lint rule L007): scenario code never
//! reads the wall clock directly. Profile wall times come from the span
//! tree the profiler itself records (`ProfileResult::total_time`), and
//! serve-stage times from spans opened on a local `muds-obs` registry —
//! so the numbers in the report are exactly the numbers the observability
//! layer saw.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use muds_core::json::parse_json;
use muds_core::{profile_csv, Algorithm, ProfilerConfig};
use muds_datagen::{ionosphere_like, ncvoter_like, uniprot_like};
use muds_obs::{flatten_phases, Metrics, RssSampler};
use muds_serve::{ServeConfig, Server};
use muds_table::{table_to_csv, CsvOptions, Table};

use crate::report::{BenchEntry, BenchReport, PhaseRow};

/// What a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// In-process `profile_csv` over all four algorithms.
    Profile,
    /// HTTP round-trips against an embedded `muds-serve` daemon.
    Serve,
    /// MUDS with the single-scan stats layer off vs on — the overhead the
    /// `column_profiles` payload costs on top of dependency discovery.
    StatsOverhead,
}

impl ScenarioKind {
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Profile => "profile",
            ScenarioKind::Serve => "serve",
            ScenarioKind::StatsOverhead => "stats",
        }
    }
}

/// One row of the scenario matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Stable identifier: keys the `BENCH_<name>.json` file.
    pub name: &'static str,
    pub kind: ScenarioKind,
    /// Datagen shape (`uniprot` | `ncvoter` | `ionosphere`).
    pub shape: &'static str,
    /// Rows at full size (0 = the shape fixes its own row count).
    pub rows: usize,
    pub cols: usize,
    /// Which paper figure this configuration maps to (EXPERIMENTS.md).
    pub figure: &'static str,
}

/// The full matrix, cheapest first. `ionosphere_wide` and `uniprot_10k`
/// are the two CI smoke scenarios (see `.github/workflows/ci.yml`).
pub const SCENARIOS: [ScenarioSpec; 7] = [
    ScenarioSpec {
        name: "ionosphere_wide",
        kind: ScenarioKind::Profile,
        shape: "ionosphere",
        rows: 0,
        // 14 columns: wide enough that the lattice dominates (Figure 7's
        // regime) while the whole four-algorithm run stays ~1s; FD counts
        // explode exponentially past ~16 columns.
        cols: 14,
        figure: "Figure 7 (column scalability, 351 rows)",
    },
    ScenarioSpec {
        name: "uniprot_10k",
        kind: ScenarioKind::Profile,
        shape: "uniprot",
        rows: 10_000,
        cols: 8,
        figure: "Figure 6 (row scalability, small point)",
    },
    ScenarioSpec {
        name: "ncvoter_10k",
        kind: ScenarioKind::Profile,
        shape: "ncvoter",
        rows: 10_000,
        cols: 8,
        figure: "Figure 6 (row scalability, small point)",
    },
    ScenarioSpec {
        name: "stats_overhead",
        kind: ScenarioKind::StatsOverhead,
        shape: "uniprot",
        rows: 10_000,
        cols: 8,
        figure: "§15 stats overhead on a Figure 6 workload (target ≤ 10%)",
    },
    ScenarioSpec {
        name: "serve_roundtrip",
        kind: ScenarioKind::Serve,
        shape: "ncvoter",
        rows: 2_000,
        cols: 8,
        figure: "daemon overhead on a Figure 6 workload",
    },
    ScenarioSpec {
        name: "uniprot_50k",
        kind: ScenarioKind::Profile,
        shape: "uniprot",
        rows: 50_000,
        cols: 10,
        figure: "Figure 6/8 (row scalability + phase breakdown)",
    },
    ScenarioSpec {
        name: "ncvoter_50k",
        kind: ScenarioKind::Profile,
        shape: "ncvoter",
        rows: 50_000,
        cols: 10,
        figure: "Figure 6 (row scalability)",
    },
];

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// Knobs shared by every scenario run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Worker threads requested via `--threads` (0 = pool default). Only
    /// recorded — the global pool is configured once by the caller.
    pub threads: usize,
    /// Runs per entry; the best (minimum-wall) run is reported.
    pub repeat: usize,
    /// Divides row counts (min 200 rows) so tests can exercise the full
    /// matrix in milliseconds. 1 = full size; committed baselines use 1.
    pub scale: usize,
    /// RSS sampler poll interval.
    pub rss_interval: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { threads: 0, repeat: 3, scale: 1, rss_interval: Duration::from_millis(2) }
    }
}

impl RunOptions {
    fn scaled_rows(&self, rows: usize) -> usize {
        (rows / self.scale.max(1)).max(200)
    }
}

/// How the paper buckets each algorithm: the holistic contenders share
/// one input scan; the sequential ones pay per-task scans.
pub fn mode_of(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Muds | Algorithm::HolisticFun => "holistic",
        Algorithm::Baseline | Algorithm::Tane => "sequential",
    }
}

fn generate(spec: &ScenarioSpec, opts: &RunOptions) -> Table {
    match spec.shape {
        "uniprot" => uniprot_like(opts.scaled_rows(spec.rows), spec.cols),
        "ncvoter" => ncvoter_like(opts.scaled_rows(spec.rows), spec.cols),
        _ => ionosphere_like(spec.cols),
    }
}

/// Runs one scenario to a full report. Errors (not panics) on harness
/// failures — a broken scenario must fail `bench` with a message, not
/// take the process down mid-matrix.
pub fn run_scenario(spec: &ScenarioSpec, opts: &RunOptions) -> Result<BenchReport, String> {
    match spec.kind {
        ScenarioKind::Profile => run_profile(spec, opts),
        ScenarioKind::Serve => run_serve(spec, opts),
        ScenarioKind::StatsOverhead => run_stats_overhead(spec, opts),
    }
}

/// What the single-scan stats layer costs on top of dependency discovery:
/// the same generated CSV through MUDS twice, `stats` off then on, both
/// walls from the profiler's own span tree. The two entries share the
/// algorithm name and differ in `mode`, so the regression diff tracks the
/// dependencies-only baseline and the with-stats run independently.
fn run_stats_overhead(spec: &ScenarioSpec, opts: &RunOptions) -> Result<BenchReport, String> {
    let table = generate(spec, opts);
    let csv = table_to_csv(&table, &CsvOptions::default());
    let mut entries = Vec::with_capacity(2);
    let mut report_peak = 0u64;
    for (mode, stats) in [("deps-only", false), ("with-stats", true)] {
        let config = ProfilerConfig { stats, ..ProfilerConfig::default() };
        let sampler = RssSampler::start(opts.rss_interval);
        let mut best: Option<BenchEntry> = None;
        for _ in 0..opts.repeat.max(1) {
            let registry = Metrics::new();
            let alloc_before = muds_obs::alloc::allocated_bytes();
            let result = {
                let _guard = registry.install();
                profile_csv(table.name(), &csv, &CsvOptions::default(), Algorithm::Muds, &config)
                    .map_err(|e| format!("{}: generated CSV failed to parse: {e}", spec.name))?
            };
            let alloc_bytes = muds_obs::alloc::allocated_bytes().saturating_sub(alloc_before);
            let wall_ns = u64::try_from(result.total_time().as_nanos()).unwrap_or(u64::MAX);
            if best.as_ref().is_none_or(|b| wall_ns < b.wall_ns) {
                let rows = table.num_rows() as f64;
                best = Some(BenchEntry {
                    algorithm: Algorithm::Muds.name().to_string(),
                    mode: mode.to_string(),
                    wall_ns,
                    rows_per_sec: rows / (wall_ns.max(1) as f64 / 1e9),
                    peak_rss_bytes: 0,
                    alloc_bytes,
                    counters: result.metrics.counters.clone(),
                    phases: phase_rows(&result.metrics.spans),
                });
            }
        }
        let window = sampler.stop();
        report_peak = report_peak.max(window.peak_bytes);
        let mut entry = best.ok_or_else(|| format!("{}: no runs executed", spec.name))?;
        entry.peak_rss_bytes = window.peak_bytes;
        entries.push(entry);
    }
    Ok(BenchReport {
        scenario: spec.name.to_string(),
        kind: spec.kind.name().to_string(),
        shape: spec.shape.to_string(),
        rows: table.num_rows() as u64,
        columns: table.num_columns() as u64,
        threads: opts.threads as u64,
        repeat: opts.repeat.max(1) as u64,
        alloc_tracking: muds_obs::alloc::tracking_enabled(),
        peak_rss_bytes: report_peak,
        entries,
    })
}

fn run_profile(spec: &ScenarioSpec, opts: &RunOptions) -> Result<BenchReport, String> {
    let table = generate(spec, opts);
    let csv = table_to_csv(&table, &CsvOptions::default());
    let config = ProfilerConfig::default();
    let mut entries = Vec::with_capacity(Algorithm::ALL.len());
    let mut report_peak = 0u64;
    for algorithm in Algorithm::ALL {
        let sampler = RssSampler::start(opts.rss_interval);
        let mut best: Option<BenchEntry> = None;
        for _ in 0..opts.repeat.max(1) {
            // A fresh registry per run: the profiler drains it into the
            // result, so counters and spans cover exactly this run even
            // if the caller has its own ambient registry installed.
            let registry = Metrics::new();
            let alloc_before = muds_obs::alloc::allocated_bytes();
            let result = {
                let _guard = registry.install();
                profile_csv(table.name(), &csv, &CsvOptions::default(), algorithm, &config)
                    .map_err(|e| format!("{}: generated CSV failed to parse: {e}", spec.name))?
            };
            let alloc_bytes = muds_obs::alloc::allocated_bytes().saturating_sub(alloc_before);
            let wall_ns = u64::try_from(result.total_time().as_nanos()).unwrap_or(u64::MAX);
            if best.as_ref().is_none_or(|b| wall_ns < b.wall_ns) {
                let rows = table.num_rows() as f64;
                best = Some(BenchEntry {
                    algorithm: algorithm.name().to_string(),
                    mode: mode_of(algorithm).to_string(),
                    wall_ns,
                    rows_per_sec: rows / (wall_ns.max(1) as f64 / 1e9),
                    peak_rss_bytes: 0, // filled below, once the window closes
                    alloc_bytes,
                    counters: result.metrics.counters.clone(),
                    phases: phase_rows(&result.metrics.spans),
                });
            }
        }
        let window = sampler.stop();
        report_peak = report_peak.max(window.peak_bytes);
        let mut entry = best.ok_or_else(|| format!("{}: no runs executed", spec.name))?;
        entry.peak_rss_bytes = window.peak_bytes;
        entries.push(entry);
    }
    Ok(BenchReport {
        scenario: spec.name.to_string(),
        kind: spec.kind.name().to_string(),
        shape: spec.shape.to_string(),
        rows: table.num_rows() as u64,
        columns: table.num_columns() as u64,
        threads: opts.threads as u64,
        repeat: opts.repeat.max(1) as u64,
        alloc_tracking: muds_obs::alloc::tracking_enabled(),
        peak_rss_bytes: report_peak,
        entries,
    })
}

fn phase_rows(spans: &[muds_obs::SpanNode]) -> Vec<PhaseRow> {
    flatten_phases(spans).into_iter().map(|(name, total_ns)| PhaseRow { name, total_ns }).collect()
}

// ---------------------------------------------------------------------------
// Serve round-trip scenario: a real daemon, real sockets.
// ---------------------------------------------------------------------------

/// Cache hits measured per bench run (the steady-state number).
const HIT_REQUESTS: usize = 16;

fn run_serve(spec: &ScenarioSpec, opts: &RunOptions) -> Result<BenchReport, String> {
    let table = generate(spec, opts);
    let csv = table_to_csv(&table, &CsvOptions::default());
    let rows = table.num_rows() as f64;
    let columns = table.num_columns() as u64;
    let sampler = RssSampler::start(opts.rss_interval);

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("{}: cannot bind bench server: {e}", spec.name))?;
    let addr = server.local_addr().map_err(|e| format!("{}: no local addr: {e}", spec.name))?;
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.run());

    // Everything below talks to the daemon; on any error, still shut the
    // server down before returning.
    let outcome = drive_roundtrips(spec, opts, addr, rows, columns, &csv);
    // lint:allow(swallowed-result): the shutdown POST is a nudge; the
    // request_shutdown() below is the authoritative stop signal.
    let _ = http_call(addr, "POST", "/shutdown", &[], b"");
    state.request_shutdown();
    let join = server_thread.join();
    let window = sampler.stop();
    let mut report = outcome?;
    join.map_err(|_| "bench server thread panicked".to_string())?
        .map_err(|e| format!("bench server failed: {e}"))?;
    report.peak_rss_bytes = window.peak_bytes;
    for entry in &mut report.entries {
        entry.peak_rss_bytes = window.peak_bytes;
    }
    Ok(report)
}

fn drive_roundtrips(
    spec: &ScenarioSpec,
    opts: &RunOptions,
    addr: SocketAddr,
    rows: f64,
    columns: u64,
    csv: &str,
) -> Result<BenchReport, String> {
    let registry = Metrics::new();
    let trace = format!("bench-{}", spec.name);
    let mut entries = Vec::with_capacity(3);

    // Stage 1: dataset registration (CSV upload + dedup + fingerprint).
    let timer = registry.span("register");
    let (status, headers, body) = http_call(
        addr,
        "POST",
        "/datasets?name=bench_rt",
        &[("Content-Type", "text/csv"), ("X-Muds-Trace", &trace)],
        csv.as_bytes(),
    )?;
    let register_ns = duration_ns(timer.stop());
    if status != 201 {
        return Err(format!("register returned {status}: {}", String::from_utf8_lossy(&body)));
    }
    if header(&headers, "x-muds-trace") != Some(trace.as_str()) {
        return Err("server did not echo the propagated X-Muds-Trace id".to_string());
    }
    entries.push(stage_entry("register", register_ns, rows, BTreeMap::new()));

    // Stage 2: the cache-miss profile run (queued job + full MUDS run).
    let profile_body = b"{\"dataset\":\"bench_rt\",\"algorithm\":\"muds\"}";
    let timer = registry.span("profile_miss");
    let (status, headers, body) = http_call(
        addr,
        "POST",
        "/profile",
        &[("Content-Type", "application/json"), ("X-Muds-Trace", &trace)],
        profile_body,
    )?;
    let miss_ns = duration_ns(timer.stop());
    if status != 200 {
        return Err(format!("profile miss returned {status}: {}", String::from_utf8_lossy(&body)));
    }
    if header(&headers, "x-cache") != Some("miss") {
        return Err("first profile request was not a cache miss".to_string());
    }
    entries.push(stage_entry("profile_miss", miss_ns, rows, BTreeMap::new()));

    // Stage 3: steady-state cache hits; report the best round-trip and
    // keep the latency distribution as counters.
    let latency = registry.histogram("hit_latency");
    let mut best_hit_ns = u64::MAX;
    for _ in 0..HIT_REQUESTS.max(opts.repeat) {
        let timer = registry.span("profile_hit");
        let (status, headers, _) = http_call(
            addr,
            "POST",
            "/profile",
            &[("Content-Type", "application/json"), ("X-Muds-Trace", &trace)],
            profile_body,
        )?;
        let d = timer.stop();
        if status != 200 || header(&headers, "x-cache") != Some("hit") {
            return Err(format!("hit request degraded (status {status})"));
        }
        latency.record_duration(d);
        best_hit_ns = best_hit_ns.min(duration_ns(d));
    }
    let hits = latency.snapshot();
    let mut counters = BTreeMap::from([
        ("requests".to_string(), hits.count),
        ("latency_p50_ns".to_string(), hits.p50()),
        ("latency_p99_ns".to_string(), hits.p99()),
    ]);

    // Fold the daemon's own counters in, prefixed, so the report carries
    // both sides of the conversation.
    let (status, _, body) = http_call(addr, "GET", "/metrics", &[], b"")?;
    if status == 200 {
        if let Ok(doc) = parse_json(&String::from_utf8_lossy(&body)) {
            if let Some(map) = doc.as_object() {
                for (name, value) in map {
                    if let Some(v) = value.as_u64() {
                        counters.insert(format!("serve.{name}"), v);
                    }
                }
            }
        }
    }
    entries.push(stage_entry("profile_hit", best_hit_ns, rows, counters));

    Ok(BenchReport {
        scenario: spec.name.to_string(),
        kind: spec.kind.name().to_string(),
        shape: spec.shape.to_string(),
        rows: rows as u64,
        columns,
        threads: opts.threads as u64,
        repeat: opts.repeat.max(1) as u64,
        alloc_tracking: muds_obs::alloc::tracking_enabled(),
        peak_rss_bytes: 0, // window closes in run_serve
        entries,
    })
}

fn stage_entry(
    stage: &str,
    wall_ns: u64,
    rows: f64,
    counters: BTreeMap<String, u64>,
) -> BenchEntry {
    BenchEntry {
        algorithm: stage.to_string(),
        mode: "roundtrip".to_string(),
        wall_ns,
        rows_per_sec: rows / (wall_ns.max(1) as f64 / 1e9),
        peak_rss_bytes: 0,
        alloc_bytes: 0,
        counters,
        phases: vec![PhaseRow { name: stage.to_string(), total_ns: wall_ns }],
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Status, lower-cased headers, body.
type HttpResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// One blocking HTTP/1.1 request over a fresh connection; sends
/// `Connection: close` so `read_to_end` terminates (the daemon otherwise
/// keeps connections open for reuse).
fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).map_err(|e| format!("write head: {e}"))?;
    stream.write_all(body).map_err(|e| format!("write body: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read response: {e}"))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response without head terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-UTF-8 head".to_string())?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "malformed status line".to_string())?;
    let parsed_headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, parsed_headers, raw[head_end + 4..].to_vec()))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_opts() -> RunOptions {
        RunOptions { repeat: 1, scale: 40, ..RunOptions::default() }
    }

    #[test]
    fn profile_scenario_produces_a_full_report() {
        let spec = find("uniprot_10k").unwrap();
        let report = run_scenario(spec, &fast_opts()).expect("scenario runs");
        assert_eq!(report.scenario, "uniprot_10k");
        assert_eq!(report.kind, "profile");
        assert_eq!(report.entries.len(), 4, "one entry per algorithm");
        let modes: Vec<&str> = report.entries.iter().map(|e| e.mode.as_str()).collect();
        assert!(modes.contains(&"holistic") && modes.contains(&"sequential"));
        for entry in &report.entries {
            assert!(entry.wall_ns > 0, "{}: span-derived wall time", entry.algorithm);
            assert!(entry.rows_per_sec > 0.0);
            assert!(!entry.phases.is_empty(), "{}: phases from the span tree", entry.algorithm);
            assert!(!entry.counters.is_empty(), "{}: counter deltas", entry.algorithm);
        }
        // The report round-trips through its own JSON schema.
        let parsed = BenchReport::from_json(&report.to_json()).expect("schema-valid");
        assert_eq!(parsed, report_with_rounded_rates(&report));
    }

    /// `rows_per_sec` is serialized at 3 decimals; normalize for equality.
    fn report_with_rounded_rates(report: &BenchReport) -> BenchReport {
        let mut r = report.clone();
        for e in &mut r.entries {
            e.rows_per_sec = (e.rows_per_sec * 1000.0).round() / 1000.0;
        }
        r
    }

    #[test]
    fn serve_scenario_measures_register_miss_and_hit() {
        let spec = find("serve_roundtrip").unwrap();
        let report = run_scenario(spec, &fast_opts()).expect("serve scenario runs");
        assert_eq!(report.kind, "serve");
        let stages: Vec<&str> = report.entries.iter().map(|e| e.algorithm.as_str()).collect();
        assert_eq!(stages, ["register", "profile_miss", "profile_hit"]);
        let hit = &report.entries[2];
        assert!(hit.counters["requests"] >= HIT_REQUESTS as u64);
        assert!(hit.counters.contains_key("serve.cache_hits"));
        assert!(hit.counters["serve.trace_ids_propagated"] >= 2);
        assert!(hit.wall_ns <= report.entries[1].wall_ns, "hits are no slower than the miss");
        if cfg!(target_os = "linux") {
            assert!(report.peak_rss_bytes > 0, "sampled peak RSS");
        }
    }

    /// The `bench --all` contract: every scenario in the matrix emits a
    /// report that round-trips through the strict schema parser under its
    /// stable file name. Scaled way down so the whole matrix (including
    /// the serve daemon boot) stays test-suite friendly; `ionosphere_wide`
    /// ignores scale (fixed 351-row dataset) and dominates the runtime.
    #[test]
    fn every_scenario_emits_schema_valid_json() {
        let opts = RunOptions { repeat: 1, scale: 200, ..RunOptions::default() };
        for spec in &SCENARIOS {
            let report = run_scenario(spec, &opts).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(report.scenario, spec.name);
            assert_eq!(report.kind, spec.kind.name());
            assert!(!report.entries.is_empty(), "{}: entries", spec.name);
            assert_eq!(BenchReport::file_name(spec.name), format!("BENCH_{}.json", spec.name));
            let parsed = BenchReport::from_json(&report.to_json())
                .unwrap_or_else(|e| panic!("{}: schema round-trip: {e}", spec.name));
            assert_eq!(parsed.scenario, spec.name);
            assert_eq!(parsed.entries.len(), report.entries.len());
        }
    }

    #[test]
    fn scenario_matrix_is_well_formed() {
        assert_eq!(SCENARIOS.len(), 7);
        let mut names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7, "scenario names are unique");
        assert!(find("ionosphere_wide").is_some());
        assert!(find("nope").is_none());
        assert_eq!(SCENARIOS.iter().filter(|s| s.kind == ScenarioKind::Serve).count(), 1);
        assert_eq!(SCENARIOS.iter().filter(|s| s.kind == ScenarioKind::StatsOverhead).count(), 1);
    }

    #[test]
    fn stats_overhead_scenario_reports_both_modes() {
        let spec = find("stats_overhead").unwrap();
        let report = run_scenario(spec, &fast_opts()).expect("stats scenario runs");
        assert_eq!(report.kind, "stats");
        let modes: Vec<&str> = report.entries.iter().map(|e| e.mode.as_str()).collect();
        assert_eq!(modes, ["deps-only", "with-stats"]);
        for entry in &report.entries {
            assert_eq!(entry.algorithm, Algorithm::Muds.name());
            assert!(entry.wall_ns > 0, "{}: span-derived wall time", entry.mode);
        }
        let deps = &report.entries[0];
        let with = &report.entries[1];
        assert!(!deps.counters.keys().any(|k| k.starts_with("stats.")));
        assert!(
            with.counters.get("stats.columns_profiled").copied().unwrap_or(0) > 0,
            "with-stats run meters the stats layer"
        );
    }
}
