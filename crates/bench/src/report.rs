//! The `BENCH_<scenario>.json` document: writer, strict parser, and the
//! regression diff behind `mudsprof bench --check`.
//!
//! One report per scenario, one entry per measured configuration
//! (algorithm × mode for profile scenarios; pipeline stage for the serve
//! round-trip). The schema is versioned: [`SCHEMA_VERSION`] bumps on any
//! incompatible change, and the diff refuses to compare across versions
//! ("schema drift") rather than silently mis-reading old baselines.
//! DESIGN.md §12 is the normative schema description.

use std::collections::BTreeMap;

use muds_core::json::{json_string, parse_json, JsonValue};

/// Version stamp shared by `BENCH_*.json` and the experiment binaries'
/// `<bin>_metrics.json` sidecars.
pub const SCHEMA_VERSION: u64 = 1;

/// One flattened span-tree row (`path` is `/`-joined; see
/// `muds_obs::flatten_phases`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    pub name: String,
    pub total_ns: u64,
}

/// One measured configuration inside a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Algorithm name (`MUDS`, `HFUN`, `baseline`, `TANE`) or pipeline
    /// stage for serve scenarios (`register`, `profile_miss`, …).
    pub algorithm: String,
    /// `holistic` | `sequential` for profile scenarios, `roundtrip` for
    /// serve stages.
    pub mode: String,
    /// Wall time derived from the muds-obs span tree (sum of top-level
    /// phases), nanoseconds.
    pub wall_ns: u64,
    pub rows_per_sec: f64,
    /// Peak RSS sampled over this entry's window (0 on platforms without
    /// a probe).
    pub peak_rss_bytes: u64,
    /// Bytes requested from the allocator during the run (0 unless the
    /// `bench-alloc` feature is on — see the report's `alloc_tracking`).
    pub alloc_bytes: u64,
    /// Counter deltas drained from the run's registry.
    pub counters: BTreeMap<String, u64>,
    /// Flattened per-phase times.
    pub phases: Vec<PhaseRow>,
}

/// One scenario's full report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub scenario: String,
    /// `profile` | `serve`.
    pub kind: String,
    /// Datagen shape behind the scenario (`uniprot` | `ncvoter` |
    /// `ionosphere`).
    pub shape: String,
    pub rows: u64,
    pub columns: u64,
    /// Worker threads requested (0 = pool default).
    pub threads: u64,
    /// Repetitions per entry; each entry keeps its best run.
    pub repeat: u64,
    /// Whether the counting allocator was compiled in when this report
    /// was produced. Diffs never compare alloc numbers across differing
    /// flags.
    pub alloc_tracking: bool,
    /// Max over the entries' window peaks.
    pub peak_rss_bytes: u64,
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Canonical file name: `BENCH_<scenario>.json`.
    pub fn file_name(scenario: &str) -> String {
        format!("BENCH_{scenario}.json")
    }

    /// Serializes the report (deterministic field order, one entry per
    /// block, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", SCHEMA_VERSION));
        out.push_str(&format!("  \"scenario\": {},\n", json_string(&self.scenario)));
        out.push_str(&format!("  \"kind\": {},\n", json_string(&self.kind)));
        out.push_str(&format!("  \"shape\": {},\n", json_string(&self.shape)));
        out.push_str(&format!("  \"rows\": {},\n", self.rows));
        out.push_str(&format!("  \"columns\": {},\n", self.columns));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"repeat\": {},\n", self.repeat));
        out.push_str(&format!("  \"alloc_tracking\": {},\n", self.alloc_tracking));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"algorithm\": {}, ", json_string(&e.algorithm)));
            out.push_str(&format!("\"mode\": {}, ", json_string(&e.mode)));
            out.push_str(&format!("\"wall_ns\": {}, ", e.wall_ns));
            out.push_str(&format!("\"rows_per_sec\": {:.3}, ", e.rows_per_sec));
            out.push_str(&format!("\"peak_rss_bytes\": {}, ", e.peak_rss_bytes));
            out.push_str(&format!("\"alloc_bytes\": {},\n     \"counters\": {{", e.alloc_bytes));
            for (j, (name, value)) in e.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(name), value));
            }
            out.push_str("},\n     \"phases\": [");
            for (j, p) in e.phases.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"name\": {}, \"total_ns\": {}}}",
                    json_string(&p.name),
                    p.total_ns
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Strict parser: every schema field is required, and an unknown
    /// `schema_version` fails here (the `--check` "schema drift" path).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = parse_json(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let version = require_u64(&doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema drift: report has schema_version {version}, this tool expects \
                 {SCHEMA_VERSION}"
            ));
        }
        let entries_value = doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing \"entries\" array".to_string())?;
        let mut entries = Vec::with_capacity(entries_value.len());
        for (i, e) in entries_value.iter().enumerate() {
            entries.push(parse_entry(e).map_err(|m| format!("entry {i}: {m}"))?);
        }
        if entries.is_empty() {
            return Err("\"entries\" must not be empty".to_string());
        }
        Ok(BenchReport {
            scenario: require_str(&doc, "scenario")?,
            kind: require_str(&doc, "kind")?,
            shape: require_str(&doc, "shape")?,
            rows: require_u64(&doc, "rows")?,
            columns: require_u64(&doc, "columns")?,
            threads: require_u64(&doc, "threads")?,
            repeat: require_u64(&doc, "repeat")?,
            alloc_tracking: doc
                .get("alloc_tracking")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| "missing \"alloc_tracking\" bool".to_string())?,
            peak_rss_bytes: require_u64(&doc, "peak_rss_bytes")?,
            entries,
        })
    }
}

fn require_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing \"{key}\" number"))
}

fn require_str(doc: &JsonValue, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing \"{key}\" string"))
}

fn parse_entry(e: &JsonValue) -> Result<BenchEntry, String> {
    let counters_value = e
        .get("counters")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| "missing \"counters\" object".to_string())?;
    let mut counters = BTreeMap::new();
    for (name, value) in counters_value {
        let v = value.as_u64().ok_or_else(|| format!("counter {name:?} is not a u64"))?;
        counters.insert(name.clone(), v);
    }
    let phases_value = e
        .get("phases")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"phases\" array".to_string())?;
    let mut phases = Vec::with_capacity(phases_value.len());
    for p in phases_value {
        phases.push(PhaseRow {
            name: require_str(p, "name")?,
            total_ns: require_u64(p, "total_ns")?,
        });
    }
    Ok(BenchEntry {
        algorithm: require_str(e, "algorithm")?,
        mode: require_str(e, "mode")?,
        wall_ns: require_u64(e, "wall_ns")?,
        rows_per_sec: e
            .get("rows_per_sec")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| "missing \"rows_per_sec\" number".to_string())?,
        peak_rss_bytes: require_u64(e, "peak_rss_bytes")?,
        alloc_bytes: require_u64(e, "alloc_bytes")?,
        counters,
        phases,
    })
}

/// Regression tolerances for `--check`. A *current* number may exceed the
/// baseline by at most the given fraction before the diff fails.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Allowed wall-time growth per entry (0.25 = fail beyond +25%).
    pub wall_frac: f64,
    /// Allowed peak-RSS growth per report (0.30 = fail beyond +30%).
    pub rss_frac: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance { wall_frac: 0.25, rss_frac: 0.30 }
    }
}

/// Outcome of one report-vs-baseline comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Hard failures (regressions beyond tolerance, structural drift).
    pub violations: Vec<String>,
    /// Informational lines (improvements, skipped comparisons).
    pub notes: Vec<String>,
}

impl DiffReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compares `current` against `baseline`. Wall time is compared per
/// matched `(algorithm, mode)` entry; peak RSS at report level (entry
/// windows overlap too much for per-entry attribution to be stable).
/// Timing noise floor: entries whose baseline wall is under 1ms are
/// note-only, never violations.
pub fn diff(current: &BenchReport, baseline: &BenchReport, tol: &Tolerance) -> DiffReport {
    const WALL_NOISE_FLOOR_NS: u64 = 1_000_000;
    let mut out = DiffReport::default();
    if current.scenario != baseline.scenario {
        out.violations.push(format!(
            "scenario mismatch: current {:?} vs baseline {:?}",
            current.scenario, baseline.scenario
        ));
        return out;
    }
    if current.rows != baseline.rows || current.columns != baseline.columns {
        out.violations.push(format!(
            "shape drift: current {}x{} vs baseline {}x{}",
            current.rows, current.columns, baseline.rows, baseline.columns
        ));
    }
    for base in &baseline.entries {
        let Some(cur) =
            current.entries.iter().find(|e| e.algorithm == base.algorithm && e.mode == base.mode)
        else {
            out.violations.push(format!(
                "entry {}/{} missing from current report",
                base.algorithm, base.mode
            ));
            continue;
        };
        let limit = (base.wall_ns as f64 * (1.0 + tol.wall_frac)) as u64;
        let ratio = cur.wall_ns as f64 / base.wall_ns.max(1) as f64;
        if cur.wall_ns > limit && base.wall_ns >= WALL_NOISE_FLOOR_NS {
            out.violations.push(format!(
                "{} {}/{}: wall {:.2}x baseline ({} ns vs {} ns, tolerance +{:.0}%)",
                current.scenario,
                base.algorithm,
                base.mode,
                ratio,
                cur.wall_ns,
                base.wall_ns,
                tol.wall_frac * 100.0
            ));
        } else if ratio < 0.80 {
            out.notes.push(format!(
                "{} {}/{}: improved to {:.2}x baseline wall",
                current.scenario, base.algorithm, base.mode, ratio
            ));
        }
    }
    match (current.peak_rss_bytes, baseline.peak_rss_bytes) {
        (cur, base) if cur > 0 && base > 0 => {
            let limit = (base as f64 * (1.0 + tol.rss_frac)) as u64;
            if cur > limit {
                out.violations.push(format!(
                    "{}: peak RSS {:.2}x baseline ({} vs {} bytes, tolerance +{:.0}%)",
                    current.scenario,
                    cur as f64 / base as f64,
                    cur,
                    base,
                    tol.rss_frac * 100.0
                ));
            }
        }
        _ => out
            .notes
            .push(format!("{}: RSS comparison skipped (no probe on one side)", current.scenario)),
    }
    if current.alloc_tracking && baseline.alloc_tracking {
        for base in &baseline.entries {
            if let Some(cur) = current
                .entries
                .iter()
                .find(|e| e.algorithm == base.algorithm && e.mode == base.mode)
            {
                if base.alloc_bytes > 0 && cur.alloc_bytes > base.alloc_bytes * 2 {
                    out.notes.push(format!(
                        "{} {}/{}: alloc_bytes doubled ({} vs {})",
                        current.scenario,
                        base.algorithm,
                        base.mode,
                        cur.alloc_bytes,
                        base.alloc_bytes
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            scenario: "uniprot_10k".into(),
            kind: "profile".into(),
            shape: "uniprot".into(),
            rows: 10_000,
            columns: 8,
            threads: 0,
            repeat: 3,
            alloc_tracking: false,
            peak_rss_bytes: 50 << 20,
            entries: vec![BenchEntry {
                algorithm: "MUDS".into(),
                mode: "holistic".into(),
                wall_ns: 120_000_000,
                rows_per_sec: 83_333.333,
                peak_rss_bytes: 48 << 20,
                alloc_bytes: 0,
                counters: BTreeMap::from([("pli.intersects".to_string(), 42u64)]),
                phases: vec![
                    PhaseRow { name: "read input".into(), total_ns: 9_000_000 },
                    PhaseRow { name: "MUDS".into(), total_ns: 111_000_000 },
                ],
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = BenchReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed.scenario, report.scenario);
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].counters["pli.intersects"], 42);
        assert_eq!(parsed.entries[0].phases, report.entries[0].phases);
        assert!((parsed.entries[0].rows_per_sec - 83_333.333).abs() < 0.001);
    }

    #[test]
    fn parser_rejects_schema_drift_and_missing_fields() {
        let good = sample().to_json();
        let drifted = good.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchReport::from_json(&drifted).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
        let truncated = good.replace("\"kind\": \"profile\",\n", "");
        let err = BenchReport::from_json(&truncated).unwrap_err();
        assert!(err.contains("\"kind\""), "{err}");
        let head = &good[..good.find("\"entries\"").unwrap()];
        let empty = format!("{head}\"entries\": []\n}}\n");
        let err = BenchReport::from_json(&empty).unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");
    }

    #[test]
    fn diff_fails_on_a_2x_slowdown_and_rss_blowup() {
        let baseline = sample();
        let mut slow = sample();
        slow.entries[0].wall_ns *= 2;
        let d = diff(&slow, &baseline, &Tolerance::default());
        assert!(!d.ok());
        assert!(d.violations[0].contains("2.00x"), "{:?}", d.violations);

        let mut fat = sample();
        fat.peak_rss_bytes = baseline.peak_rss_bytes * 2;
        let d = diff(&fat, &baseline, &Tolerance::default());
        assert!(!d.ok());
        assert!(d.violations[0].contains("peak RSS"), "{:?}", d.violations);

        // Within tolerance: ok.
        let mut near = sample();
        near.entries[0].wall_ns = (near.entries[0].wall_ns as f64 * 1.2) as u64;
        assert!(diff(&near, &baseline, &Tolerance::default()).ok());
    }

    #[test]
    fn diff_flags_missing_entries_and_shape_drift() {
        let baseline = sample();
        let mut renamed = sample();
        renamed.entries[0].algorithm = "HFUN".into();
        let d = diff(&renamed, &baseline, &Tolerance::default());
        assert!(
            d.violations.iter().any(|v| v.contains("missing from current")),
            "{:?}",
            d.violations
        );

        let mut reshaped = sample();
        reshaped.rows = 99;
        let d = diff(&reshaped, &baseline, &Tolerance::default());
        assert!(d.violations.iter().any(|v| v.contains("shape drift")), "{:?}", d.violations);

        let mut other = sample();
        other.scenario = "ncvoter_10k".into();
        assert!(!diff(&other, &baseline, &Tolerance::default()).ok());
    }

    #[test]
    fn sub_millisecond_baselines_never_fail_on_wall() {
        let mut baseline = sample();
        baseline.entries[0].wall_ns = 400_000; // 0.4ms: below noise floor
        let mut slow = baseline.clone();
        slow.entries[0].wall_ns = 10_000_000;
        assert!(diff(&slow, &baseline, &Tolerance::default()).ok());
    }

    /// A 0 ns baseline wall (clock too coarse, or a hand-edited file) must
    /// neither divide by zero nor fail `--check`: the ratio divisor clamps
    /// to 1 and the noise floor makes the entry note-only.
    #[test]
    fn zero_ns_baseline_wall_never_divides_by_zero_or_fails() {
        let mut baseline = sample();
        baseline.entries[0].wall_ns = 0;
        let mut current = baseline.clone();
        current.entries[0].wall_ns = 10_000_000;
        let d = diff(&current, &baseline, &Tolerance::default());
        assert!(d.ok(), "0 ns baseline is below the noise floor: {:?}", d.violations);
        for line in d.violations.iter().chain(d.notes.iter()) {
            assert!(!line.contains("inf") && !line.contains("NaN"), "non-finite ratio: {line}");
        }
        // Both sides zero: a (harmless) finite improvement note, no panic.
        let mut still = baseline.clone();
        still.entries[0].wall_ns = 0;
        assert!(diff(&still, &baseline, &Tolerance::default()).ok());
    }
}
