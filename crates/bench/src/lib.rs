//! Experiment harness utilities shared by the per-figure/table binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (DESIGN.md §5 maps them): `fig6` (row scalability),
//! `fig7` (column scalability), `table3` (eleven UCI datasets × four
//! algorithms), `fig8` (MUDS phase breakdown), and `ablation` (design-choice
//! studies). Absolute numbers differ from the paper (different hardware,
//! Rust instead of Java/Metanome, synthetic stand-in data); the *shapes* —
//! who wins, by what factor, where crossovers fall — are the reproduction
//! target recorded in EXPERIMENTS.md.

use std::time::{Duration, Instant};

use muds_core::{profile_csv, Algorithm, ProfileResult, ProfilerConfig};
use muds_obs::MetricsSnapshot;
use muds_table::{table_to_csv, CsvOptions, Table};

pub mod report;
pub mod scenarios;

/// Formats a duration as fractional seconds with sensible precision.
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.01 {
        format!("{:.1}ms", s * 1000.0)
    } else if s < 10.0 {
        format!("{s:.2}s")
    } else {
        format!("{s:.1}s")
    }
}

/// One measured cell of an experiment: algorithm → total runtime + result.
pub struct Measurement {
    pub algorithm: Algorithm,
    pub result: ProfileResult,
    /// End-to-end wall clock (including input parsing, per the paper's
    /// shared-I/O cost model).
    pub elapsed: Duration,
}

/// Runs `algorithms` on the CSV serialization of `table`, so the sequential
/// baseline honestly pays one parse per task while the holistic algorithms
/// parse once — the paper's I/O-sharing comparison.
pub fn measure(
    table: &Table,
    algorithms: &[Algorithm],
    config: &ProfilerConfig,
) -> Vec<Measurement> {
    let csv = table_to_csv(table, &CsvOptions::default());
    algorithms
        .iter()
        .map(|&algorithm| {
            let t0 = Instant::now();
            // lint:allow(panic): the CSV was serialized from an
            // already-validated Table one line up; a parse failure here is
            // a bench-harness bug and should abort the experiment loudly.
            let result = profile_csv(table.name(), &csv, &CsvOptions::default(), algorithm, config)
                .expect("generated CSV is valid");
            let elapsed = t0.elapsed();
            Measurement { algorithm, result, elapsed }
        })
        .collect()
}

/// Asserts that all measurements produced identical FD and UCC sets — every
/// experiment doubles as a correctness check.
pub fn assert_consistent(measurements: &[Measurement]) {
    for pair in measurements.windows(2) {
        let [a, b] = pair else { continue };
        assert_eq!(
            a.result.fds.to_sorted_vec(),
            b.result.fds.to_sorted_vec(),
            "{} and {} disagree on FDs",
            a.algorithm.name(),
            b.algorithm.name()
        );
        assert_eq!(
            a.result.minimal_uccs,
            b.result.minimal_uccs,
            "{} and {} disagree on UCCs",
            a.algorithm.name(),
            b.algorithm.name()
        );
    }
}

/// Prints an aligned text table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Configures the global worker pool from an optional `--threads N`
/// argument; call once at the top of every experiment binary. Without the
/// flag, rayon defaults to all cores on first use. Results and counters are
/// thread-count invariant, so `--threads` only changes wall-clock numbers.
pub fn init_threads() {
    let n = arg_usize("--threads", 0);
    if n > 0 {
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("warning: cannot configure {n} worker threads: {e}");
        }
    }
}

/// Parses `--flag value`-style integer arguments from the binary's argv,
/// with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value`-style string argument from the binary's argv.
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// True when `--flag` is present in argv.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Collects the metrics snapshots of an experiment run and writes them as
/// one JSON sidecar file next to the printed tables, so the work counters
/// (PLI traffic, walk effort, SPIDER merge steps, …) behind every cell
/// survive the run. Grows via [`MetricsSidecar::record`], written once at
/// binary exit.
pub struct MetricsSidecar {
    path: String,
    /// Scenario key embedded in the envelope — the binary's name, matching
    /// the `scenario` field of `BENCH_*.json` reports.
    scenario: String,
    entries: Vec<String>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl MetricsSidecar {
    /// Sidecar for the named experiment binary. The default path
    /// `<bin>_metrics.json` (current directory) can be overridden with
    /// `--metrics-out <path>`.
    pub fn for_bin(bin: &str) -> MetricsSidecar {
        let path = arg_str("--metrics-out").unwrap_or_else(|| format!("{bin}_metrics.json"));
        MetricsSidecar { path, scenario: bin.to_string(), entries: Vec::new() }
    }

    /// Records one labelled snapshot, e.g. `("rows=50000", "MUDS", …)`.
    pub fn record(&mut self, label: &str, algorithm: &str, snapshot: &MetricsSnapshot) {
        self.entries.push(format!(
            "{{\"label\":\"{}\",\"algorithm\":\"{}\",\"metrics\":{}}}",
            json_escape(label),
            json_escape(algorithm),
            snapshot.to_json()
        ));
    }

    /// Records every measurement of one experiment cell under `label`.
    pub fn record_all(&mut self, label: &str, measurements: &[Measurement]) {
        for m in measurements {
            self.record(label, m.algorithm.name(), &m.result.metrics);
        }
    }

    /// The sidecar content: the same schema-versioned envelope as
    /// `BENCH_*.json` (so tooling can key both by `schema_version` +
    /// `scenario`), with one `entries` element per recorded snapshot.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n\"schema_version\": {},\n\"scenario\": \"{}\",\n\"entries\": [\n  {}\n]\n}}\n",
            report::SCHEMA_VERSION,
            json_escape(&self.scenario),
            self.entries.join(",\n  ")
        )
    }

    /// Writes the sidecar, reporting the path (or the error) on stderr.
    pub fn write(&self) {
        match std::fs::write(&self.path, self.to_json()) {
            Ok(()) => eprintln!("metrics sidecar: {}", self.path),
            Err(e) => eprintln!("metrics sidecar: cannot write {}: {e}", self.path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_datagen::uniprot_like;

    #[test]
    fn measure_runs_all_algorithms_consistently() {
        let t = uniprot_like(300, 6);
        let ms = measure(&t, &Algorithm::ALL, &ProfilerConfig::default());
        assert_eq!(ms.len(), 4);
        assert_consistent(&ms);
    }

    #[test]
    fn sidecar_json_shape() {
        let t = uniprot_like(100, 5);
        let ms = measure(&t, &[Algorithm::Muds], &ProfilerConfig::default());
        let mut sidecar = MetricsSidecar::for_bin("fig6");
        sidecar.record_all("rows=100", &ms);
        let json = sidecar.to_json();
        let doc = muds_core::json::parse_json(&json).expect("sidecar envelope parses");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(report::SCHEMA_VERSION),
            "sidecar shares the BENCH_*.json schema version"
        );
        assert_eq!(doc.get("scenario").and_then(|v| v.as_str()), Some("fig6"));
        assert!(json.contains("\"label\":\"rows=100\""));
        assert!(json.contains("\"algorithm\":\"MUDS\""));
        assert!(json.contains("\"pli.intersects\""));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(5)), "5.0ms");
        assert_eq!(secs(Duration::from_millis(1500)), "1.50s");
        assert_eq!(secs(Duration::from_secs(75)), "75.0s");
    }
}
