//! Byte-count allocation tracking behind the `bench-alloc` feature.
//!
//! When the feature is on, a global counting allocator wraps the system
//! allocator and keeps two process-wide relaxed counters: cumulative bytes
//! allocated and cumulative bytes freed. The bench harness reads the
//! *allocated* counter before and after a run and reports the delta as
//! `alloc_bytes`. With the feature off (the default — nothing in the
//! workspace enables it, so normal builds keep the stock allocator), every
//! probe returns 0 and [`tracking_enabled`] returns `false`, which the
//! BENCH JSON schema carries as `alloc_tracking: false` so baseline diffs
//! never compare tracked numbers against untracked zeros.
//!
//! The counters deliberately count *requested* layout sizes, not
//! allocator-internal rounding — the number answers "how many bytes did
//! the algorithm ask for", which is stable across allocator versions.

/// Whether the counting allocator is compiled in.
pub fn tracking_enabled() -> bool {
    cfg!(feature = "bench-alloc")
}

/// Cumulative bytes requested from the allocator since process start
/// (0 when tracking is off).
pub fn allocated_bytes() -> u64 {
    #[cfg(feature = "bench-alloc")]
    {
        counting::ALLOCATED.load(core::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        0
    }
}

/// Cumulative bytes returned to the allocator since process start
/// (0 when tracking is off).
pub fn deallocated_bytes() -> u64 {
    #[cfg(feature = "bench-alloc")]
    {
        counting::DEALLOCATED.load(core::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        0
    }
}

/// Bytes currently live according to the counters (saturating: transient
/// reorderings between the two relaxed counters never underflow).
pub fn live_bytes() -> u64 {
    allocated_bytes().saturating_sub(deallocated_bytes())
}

#[cfg(feature = "bench-alloc")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static ALLOCATED: AtomicU64 = AtomicU64::new(0);
    pub(super) static DEALLOCATED: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper that tallies requested bytes. The counter
    /// updates are relaxed: they are independent monotonic sums, read only
    /// at bench-run boundaries where the run's own joins provide the
    /// happens-before edges.
    struct CountingAllocator;

    // SAFETY: every method delegates verbatim to `System`, which upholds
    // the GlobalAlloc contract; the counter updates touch no allocator
    // state and cannot allocate (atomics only), so there is no reentrancy.
    unsafe impl GlobalAlloc for CountingAllocator {
        // SAFETY: unsafe-by-signature (trait contract); body only counts
        // and delegates to `System`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            // SAFETY: caller's layout obligations are forwarded unchanged.
            unsafe { System.alloc(layout) }
        }

        // SAFETY: unsafe-by-signature (trait contract); body only counts
        // and delegates to `System`.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            // SAFETY: caller's layout obligations are forwarded unchanged.
            unsafe { System.alloc_zeroed(layout) }
        }

        // SAFETY: unsafe-by-signature (trait contract); body only counts
        // and delegates to `System`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            DEALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            // SAFETY: ptr/layout came from this allocator, i.e. `System`.
            unsafe { System.dealloc(ptr, layout) }
        }

        // SAFETY: unsafe-by-signature (trait contract); body only counts
        // and delegates to `System`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A grow allocates the delta; a shrink frees it.
            if new_size >= layout.size() {
                ALLOCATED.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            } else {
                DEALLOCATED.fetch_add((layout.size() - new_size) as u64, Ordering::Relaxed);
            }
            // SAFETY: ptr/layout came from this allocator; new_size
            // obligations are the caller's, forwarded unchanged.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_agree_with_the_feature_flag() {
        if tracking_enabled() {
            let before = allocated_bytes();
            let block = vec![0u8; 1 << 16];
            std::hint::black_box(&block);
            assert!(allocated_bytes() >= before + (1 << 16));
            assert!(live_bytes() <= allocated_bytes());
        } else {
            assert_eq!(allocated_bytes(), 0);
            assert_eq!(deallocated_bytes(), 0);
            assert_eq!(live_bytes(), 0);
        }
    }
}
