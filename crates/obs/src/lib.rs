//! `muds-obs` — zero-dependency instrumentation for the MUDS profiler.
//!
//! Three pieces:
//!
//! * a [`Metrics`] registry of named monotonic [`Counter`]s and [`Gauge`]s.
//!   Counter handles are sharded atomics behind the scenes, so hot paths
//!   fetch a handle once at construction and pay one relaxed atomic add per
//!   event — from any thread, without contending on a single cache line;
//! * RAII [`SpanTimer`]s that nest into a phase tree ([`SpanNode`]),
//!   replacing flat phase lists with a hierarchy that mirrors the actual
//!   call structure;
//! * a pluggable [`EventSink`] ([`JsonlSink`] for `--trace`, [`NullSink`]
//!   / no sink for zero overhead) that streams span and counter events.
//!
//! Instrumented library code does not take a `&Metrics` parameter through
//! every signature. Instead a `Metrics` is *installed* as the thread-local
//! ambient registry ([`Metrics::install`]); library code calls the free
//! functions [`counter`], [`add`], [`span`], … which resolve against the
//! ambient registry, or degrade to no-ops (detached cells, pure timers)
//! when none is installed. This keeps `muds-pli`/`muds-lattice`/… APIs
//! unchanged while still letting `mudsprof` observe everything.
//!
//! # Threading model
//!
//! A registry is shared state: `Metrics` is `Send + Sync` and cheap to
//! clone (shared `Arc`). [`Counter`]s are *sharded* — eight cache-line
//! padded atomics, with each thread writing one shard chosen by a
//! thread-local index — so concurrent increments from the parallel
//! execution layer neither race nor serialize on one line; [`Counter::get`]
//! sums the shards. [`Gauge`]s are single atomics ([`Gauge::set_max`] uses
//! `fetch_max`). Because counter adds are commutative and the profiler's
//! parallel sections perform a fixed multiset of increments regardless of
//! thread count, drained counter totals are deterministic for any
//! `--threads N`.
//!
//! The *ambient* registry stays thread-local: worker threads spawned by the
//! parallel layer start with no ambient registry and must explicitly
//! [`Metrics::install`] a handle captured from the spawning thread if they
//! want the free functions to resolve (hot paths instead capture handles
//! up front, which work from any thread).
//!
//! Span entry/exit and [`Metrics::drain_snapshot`] are intended for the
//! coordinating thread: spans form one tree per registry, and draining
//! resets counters non-atomically with respect to concurrent writers, so
//! callers drain only at quiescent points (end of a run).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub mod alloc;
mod json;
pub mod rss;
mod sink;
mod snapshot;

pub use rss::{RssSample, RssSampler};
pub use sink::{Event, EventSink, JsonlSink, MemorySink, NullSink};
pub use snapshot::{flatten_phases, HistogramSnapshot, MetricsSnapshot, SpanNode};

/// Number of shards per counter. Eight padded lines bound the memory cost
/// per counter while spreading writers enough for the profiler's depth-1
/// parallelism (worker counts are typically ≤ core count).
const COUNTER_SHARDS: usize = 8;

/// One cache-line padded counter shard.
///
/// Shard atomics use `Ordering::Relaxed` throughout: each shard is an
/// independent monotonic sum and no other data is published through it,
/// so cross-variable ordering buys nothing. [`Counter::get`] is exact
/// only once writers are quiescent — the pool join that ends a profiling
/// phase provides the happens-before edge that flushes all shard writes
/// before the drain reads them.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CounterShard(AtomicU64);

/// The shard this thread writes. Assigned round-robin on first use.
fn shard_index() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    SHARD.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(idx);
        }
        idx
    })
}

/// Locks ignoring poisoning: a panicking phase must not wedge the registry
/// (the data is counters and span names, always in a usable state).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Monotonic counter handle. Cloning shares the underlying shards; adds
/// are safe (and non-contending) from any thread.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<[CounterShard; COUNTER_SHARDS]>);

impl Counter {
    /// Fresh counter detached from any registry (used when no ambient
    /// `Metrics` is installed; increments are simply dropped on the floor
    /// when the shards are never read).
    pub fn detached() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0[shard_index()].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum over all shards. Exact once writers are quiescent.
    pub fn get(&self) -> u64 {
        self.0.iter().fold(0u64, |acc, shard| acc.wrapping_add(shard.0.load(Ordering::Relaxed)))
    }

    /// Zeroes all shards (drain path; callers ensure writers are quiescent).
    fn reset(&self) {
        for shard in self.0.iter() {
            shard.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Last-value gauge handle. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn detached() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Sets the gauge to `max(current, value)` — handy for high-water
    /// marks like lattice levels. Atomic, so racing raisers keep the max.
    #[inline]
    pub fn set_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` atomically — for up/down quantities
    /// maintained from several threads (e.g. jobs currently running),
    /// where racing `set(get() ± 1)` pairs would lose updates.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets. Bucket 0 counts zero values;
/// bucket `i` (i ≥ 1) counts values in `[2^(i-1), 2^i)`; the top bucket
/// absorbs everything beyond.
const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed value histogram — the latency-distribution counterpart of
/// [`Counter`]. Cloning shares the underlying buckets; recording is safe
/// from any thread. Quantiles come out of the drained
/// [`HistogramSnapshot`], resolved to the upper edge of the bucket the
/// quantile falls in (a ≤2× over-estimate by construction, which is the
/// right bias for latency SLO reporting).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Fresh histogram detached from any registry (recordings vanish when
    /// the buckets are never read).
    pub fn detached() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 { 0 } else { (u64::BITS - value.leading_zeros()) as usize }
            .min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation (for latency: in nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the current state out. Exact once writers are quiescent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Zeroes everything (drain path; callers ensure writers are
    /// quiescent).
    fn reset(&self) {
        for b in self.0.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }
}

/// A span that has been opened but not yet closed.
struct OpenSpan {
    name: String,
    start: Instant,
    children: Vec<SpanNode>,
}

struct MetricsInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// LIFO stack of currently open spans; index 0 is the outermost.
    open: Mutex<Vec<OpenSpan>>,
    /// Completed top-level spans.
    roots: Mutex<Vec<SpanNode>>,
    sink: Mutex<Option<Box<dyn EventSink>>>,
}

/// Registry of counters, gauges, and spans. Cheap to clone (shared
/// reference) and `Send + Sync`: counter/gauge handles may be exercised
/// from any thread, while the span tree and [`Metrics::drain_snapshot`]
/// belong to the coordinating thread (see the module docs).
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            inner: Arc::new(MetricsInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                open: Mutex::new(Vec::new()),
                roots: Mutex::new(Vec::new()),
                sink: Mutex::new(None),
            }),
        }
    }

    /// Returns the named counter, creating it (at zero) on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = lock(&self.inner.counters);
        if let Some(c) = counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        counters.insert(name.to_string(), c.clone());
        c
    }

    /// Returns the named gauge, creating it (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = lock(&self.inner.gauges);
        if let Some(g) = gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        gauges.insert(name.to_string(), g.clone());
        g
    }

    /// Returns the named histogram, creating it (empty) on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = lock(&self.inner.histograms);
        if let Some(h) = histograms.get(name) {
            return h.clone();
        }
        let h = Histogram::default();
        histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Adds `delta` to the named counter and publishes the bulk add to the
    /// sink (this is the end-of-phase flush path, not the per-event hot
    /// path — hot paths hold a [`Counter`] handle and never hit the map).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
        if delta > 0 {
            self.emit(&Event::CounterAdd { name, delta });
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.gauge(name).set(value);
    }

    /// Installs `sink` as the event receiver for this registry.
    pub fn set_sink(&self, sink: Box<dyn EventSink>) {
        *lock(&self.inner.sink) = Some(sink);
    }

    fn emit(&self, event: &Event<'_>) {
        if let Some(sink) = lock(&self.inner.sink).as_mut() {
            sink.emit(event);
        }
    }

    /// Opens a nested timed span. Close it with [`SpanTimer::stop`] (to get
    /// the measured duration back) or by dropping it.
    pub fn span(&self, name: impl Into<String>) -> SpanTimer {
        let name = name.into();
        let depth = {
            let mut open = lock(&self.inner.open);
            open.push(OpenSpan { name: name.clone(), start: Instant::now(), children: Vec::new() });
            open.len() - 1
        };
        self.emit(&Event::SpanStart { name: &name, depth });
        SpanTimer { metrics: Some(self.clone()), depth, start: Instant::now(), name }
    }

    /// Records an already-measured leaf span at the current nesting level.
    /// Used when a phase's duration is computed rather than directly timed
    /// (e.g. MUDS splits one measured interval across two logical phases).
    pub fn record_span(&self, name: impl Into<String>, duration: Duration) {
        let node = SpanNode::leaf(name, duration);
        let depth = {
            let mut open = lock(&self.inner.open);
            let depth = open.len();
            match open.last_mut() {
                Some(parent) => parent.children.push(node.clone()),
                None => lock(&self.inner.roots).push(node.clone()),
            }
            depth
        };
        self.emit(&Event::SpanEnd { name: &node.name, depth, duration: node.duration });
    }

    /// Closes the span opened at `depth`, force-closing any deeper spans
    /// left open (non-LIFO drops), and returns its measured duration.
    fn close_span(&self, depth: usize, elapsed: Duration) -> Duration {
        loop {
            let top = {
                let mut open = lock(&self.inner.open);
                if open.len() <= depth {
                    return elapsed; // already closed (defensive; shouldn't happen)
                }
                let straggler = open.len() - 1 > depth;
                let Some(mut span) = open.pop() else { return elapsed };
                let duration = if straggler { span.start.elapsed() } else { elapsed };
                let node = SpanNode {
                    name: std::mem::take(&mut span.name),
                    duration,
                    children: std::mem::take(&mut span.children),
                };
                let at = open.len();
                match open.last_mut() {
                    Some(parent) => parent.children.push(node.clone()),
                    None => lock(&self.inner.roots).push(node.clone()),
                }
                (node, at, straggler)
            };
            let (node, at, straggler) = top;
            self.emit(&Event::SpanEnd { name: &node.name, depth: at, duration: node.duration });
            if !straggler {
                return node.duration;
            }
        }
    }

    /// Takes a snapshot of every counter, gauge, and completed root span,
    /// then resets the registry (counters/gauges to zero, span tree
    /// cleared) so consecutive runs under one registry — e.g. the four
    /// algorithms of `mudsprof compare` — get independent snapshots. The
    /// snapshot is also published to the sink, which is then flushed.
    ///
    /// Call at quiescent points only: the read-then-reset of each counter
    /// is not atomic with respect to concurrent `add`s.
    pub fn drain_snapshot(&self) -> MetricsSnapshot {
        // Close any spans left open (e.g. a panicking phase unwound past
        // its timer) so they still show up.
        loop {
            let open = lock(&self.inner.open);
            let Some(top) = open.last() else { break };
            let depth = open.len() - 1;
            let elapsed = top.start.elapsed();
            drop(open);
            self.close_span(depth, elapsed);
        }
        let mut snapshot = MetricsSnapshot::default();
        for (name, counter) in lock(&self.inner.counters).iter() {
            snapshot.counters.insert(name.clone(), counter.get());
            counter.reset();
        }
        for (name, gauge) in lock(&self.inner.gauges).iter() {
            snapshot.gauges.insert(name.clone(), gauge.get());
            gauge.set(0);
        }
        for (name, histogram) in lock(&self.inner.histograms).iter() {
            snapshot.histograms.insert(name.clone(), histogram.snapshot());
            histogram.reset();
        }
        snapshot.spans = std::mem::take(&mut *lock(&self.inner.roots));
        self.emit(&Event::Snapshot { snapshot: &snapshot });
        if let Some(sink) = lock(&self.inner.sink).as_mut() {
            sink.flush();
        }
        snapshot
    }

    /// Installs this registry as the thread-local ambient one; the free
    /// functions ([`counter`], [`add`], [`span`], …) resolve against it
    /// until the returned guard drops. Worker threads inherit nothing:
    /// code running on a spawned thread installs a captured handle itself
    /// if it needs the free functions there.
    pub fn install(&self) -> AmbientGuard {
        AMBIENT.with(|stack| stack.borrow_mut().push(self.clone()));
        AmbientGuard { _priv: () }
    }

    /// The innermost installed registry on this thread, if any.
    pub fn current() -> Option<Metrics> {
        AMBIENT.with(|stack| stack.borrow().last().cloned())
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<Metrics>> = const { RefCell::new(Vec::new()) };
}

/// Reverts [`Metrics::install`] on drop.
pub struct AmbientGuard {
    _priv: (),
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// RAII timer for one span. Always measures wall time, even with no
/// registry attached, so callers can feed legacy timing structs from the
/// value returned by [`SpanTimer::stop`].
pub struct SpanTimer {
    metrics: Option<Metrics>,
    name: String,
    depth: usize,
    start: Instant,
}

impl SpanTimer {
    /// Timer with no registry: measures but records nowhere.
    fn detached(name: String) -> Self {
        SpanTimer { metrics: None, name, depth: 0, start: Instant::now() }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stops the timer, records the span, and returns the measured
    /// duration.
    pub fn stop(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        match self.metrics.take() {
            Some(metrics) => metrics.close_span(self.depth, elapsed),
            None => elapsed,
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.metrics.is_some() {
            self.finish();
        }
    }
}

// ---------------------------------------------------------------------------
// Free functions against the ambient registry.
// ---------------------------------------------------------------------------

/// Handle to `name` in the ambient registry, or a detached counter whose
/// increments vanish when none is installed. Fetch once, increment often.
pub fn counter(name: &str) -> Counter {
    match Metrics::current() {
        Some(m) => m.counter(name),
        None => Counter::detached(),
    }
}

/// Handle to `name` in the ambient registry, or a detached gauge.
pub fn gauge(name: &str) -> Gauge {
    match Metrics::current() {
        Some(m) => m.gauge(name),
        None => Gauge::detached(),
    }
}

/// Handle to `name` in the ambient registry, or a detached histogram
/// whose recordings vanish when none is installed.
pub fn histogram(name: &str) -> Histogram {
    match Metrics::current() {
        Some(m) => m.histogram(name),
        None => Histogram::detached(),
    }
}

/// Bulk-adds `delta` to the ambient counter `name` (no-op without an
/// ambient registry). This is the end-of-phase flush entry point.
pub fn add(name: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    if let Some(m) = Metrics::current() {
        m.add(name, delta);
    }
}

/// Sets the ambient gauge `name` (no-op without an ambient registry).
pub fn gauge_set(name: &str, value: i64) {
    if let Some(m) = Metrics::current() {
        m.gauge_set(name, value);
    }
}

/// Raises the ambient gauge `name` to at least `value`.
pub fn gauge_max(name: &str, value: i64) {
    if let Some(m) = Metrics::current() {
        m.gauge(name).set_max(value);
    }
}

/// Opens a span in the ambient registry; without one, returns a detached
/// timer that still measures wall time.
pub fn span(name: impl Into<String>) -> SpanTimer {
    let name = name.into();
    match Metrics::current() {
        Some(m) => m.span(name),
        None => SpanTimer::detached(name),
    }
}

/// Records an already-measured leaf span in the ambient registry (no-op
/// without one).
pub fn record_span(name: impl Into<String>, duration: Duration) {
    if let Some(m) = Metrics::current() {
        m.record_span(name, duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_through_handles() {
        let metrics = Metrics::new();
        let a = metrics.counter("x");
        let b = metrics.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(metrics.counter("x").get(), 5);
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let metrics = Metrics::new();
        let c = metrics.counter("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        handle.inc();
                    }
                });
            }
        });
        c.add(5);
        assert_eq!(metrics.counter("shared").get(), 4005);
    }

    #[test]
    fn gauges_track_last_value_and_max() {
        let metrics = Metrics::new();
        let g = metrics.gauge("level");
        g.set(3);
        g.set_max(2); // lower: ignored
        assert_eq!(g.get(), 3);
        g.set_max(9);
        assert_eq!(metrics.gauge("level").get(), 9);
    }

    #[test]
    fn gauge_max_is_atomic_across_threads() {
        let metrics = Metrics::new();
        let g = metrics.gauge("peak");
        std::thread::scope(|s| {
            for t in 1..=8i64 {
                let handle = g.clone();
                s.spawn(move || handle.set_max(t * 10));
            }
        });
        assert_eq!(g.get(), 80);
    }

    #[test]
    fn histograms_record_and_drain() {
        let metrics = Metrics::new();
        let h = metrics.histogram("job.latency");
        h.record(0);
        h.record(3);
        h.record(1000);
        metrics.histogram("job.latency").record_duration(Duration::from_nanos(5));
        let snap = metrics.drain_snapshot();
        let hs = snap.histogram("job.latency");
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 1008);
        assert!(hs.p99() >= 512, "1000ns value lands in the [512,1024) bucket");
        // Drained: next snapshot is empty.
        assert_eq!(metrics.drain_snapshot().histogram("job.latency").count, 0);
        // Missing histogram is the empty default.
        assert_eq!(snap.histogram("nope"), HistogramSnapshot::default());
    }

    #[test]
    fn histograms_aggregate_across_threads() {
        let metrics = Metrics::new();
        let h = metrics.histogram("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = h.clone();
                s.spawn(move || {
                    for v in 0..100u64 {
                        handle.record(v);
                    }
                });
            }
        });
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.histogram("shared").count, 400);
        // Ambient free function resolves like counters do.
        let _guard = metrics.install();
        histogram("ambient").record(7);
        assert_eq!(metrics.drain_snapshot().histogram("ambient").count, 1);
        // Detached histogram drops recordings silently.
        Histogram::detached().record(1);
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let metrics = Metrics::new();
        let outer = metrics.span("outer");
        let inner = metrics.span("inner");
        let inner_d = inner.stop();
        metrics.record_span("posthoc", Duration::from_nanos(5));
        let outer_d = outer.stop();
        assert!(outer_d >= inner_d);

        let snap = metrics.drain_snapshot();
        assert_eq!(snap.spans.len(), 1);
        let root = &snap.spans[0];
        assert_eq!(root.name, "outer");
        let kids: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["inner", "posthoc"]);
        assert_eq!(root.children[1].duration, Duration::from_nanos(5));
    }

    #[test]
    fn dropped_spans_are_recorded() {
        let metrics = Metrics::new();
        {
            let _outer = metrics.span("outer");
            let _inner = metrics.span("inner");
            // Both dropped here, inner first (reverse declaration order).
        }
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].children.len(), 1);
        assert_eq!(snap.spans[0].children[0].name, "inner");
    }

    #[test]
    fn non_lifo_stop_closes_stragglers() {
        let metrics = Metrics::new();
        let outer = metrics.span("outer");
        let _inner = metrics.span("inner"); // never explicitly stopped
        std::mem::forget(_inner); // simulate a leaked child timer
        outer.stop();
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].children.len(), 1, "straggler folded into parent");
    }

    #[test]
    fn drain_resets_counters_and_spans() {
        let metrics = Metrics::new();
        metrics.add("n", 2);
        metrics.span("p").stop();
        let first = metrics.drain_snapshot();
        assert_eq!(first.counter("n"), 2);
        assert_eq!(first.spans.len(), 1);

        let second = metrics.drain_snapshot();
        assert_eq!(second.counter("n"), 0, "counters reset by drain");
        assert!(second.spans.is_empty(), "span tree cleared by drain");
    }

    #[test]
    fn ambient_install_scopes_free_functions() {
        add("orphan", 10); // no registry installed: dropped
        let metrics = Metrics::new();
        {
            let _guard = metrics.install();
            add("seen", 3);
            let c = counter("seen");
            c.inc();
            gauge_max("depth", 4);
            span("phase").stop();
        }
        add("after", 1); // guard dropped: dropped again
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("seen"), 4);
        assert_eq!(snap.counter("orphan"), 0);
        assert_eq!(snap.counter("after"), 0);
        assert_eq!(snap.gauge("depth"), 4);
        assert_eq!(snap.spans.len(), 1);
    }

    #[test]
    fn ambient_registry_is_per_thread_until_installed() {
        let metrics = Metrics::new();
        let _guard = metrics.install();
        let from_worker = std::thread::scope(|s| {
            let m = metrics.clone();
            s.spawn(move || {
                // A fresh thread has no ambient registry…
                assert!(Metrics::current().is_none());
                add("lost", 7); // …so this is dropped.
                                // …until it installs a captured handle.
                let _g = m.install();
                add("kept", 2);
                Metrics::current().is_some()
            })
            .join()
            .unwrap()
        });
        assert!(from_worker);
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("lost"), 0);
        assert_eq!(snap.counter("kept"), 2);
    }

    #[test]
    fn nested_installs_shadow_outer_registry() {
        let outer = Metrics::new();
        let inner = Metrics::new();
        let _g1 = outer.install();
        {
            let _g2 = inner.install();
            add("n", 1);
        }
        add("n", 10);
        assert_eq!(inner.drain_snapshot().counter("n"), 1);
        assert_eq!(outer.drain_snapshot().counter("n"), 10);
    }

    /// Sink that appends JSONL lines to a shared buffer the test keeps.
    struct SharedSink(Arc<Mutex<Vec<String>>>);

    impl EventSink for SharedSink {
        fn emit(&mut self, event: &Event<'_>) {
            self.0.lock().unwrap().push(event.to_json());
        }
    }

    #[test]
    fn sink_receives_span_counter_and_snapshot_events() {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let metrics = Metrics::new();
        metrics.set_sink(Box::new(SharedSink(Arc::clone(&lines))));
        metrics.span("root").stop();
        metrics.add("c", 5);
        metrics.drain_snapshot();

        let lines = lines.lock().unwrap();
        assert!(lines[0].contains("\"type\":\"span_start\""));
        assert!(lines[0].contains("\"root\""));
        assert!(lines[1].contains("\"type\":\"span_end\""));
        assert!(lines[2].contains("\"type\":\"counter\"") && lines[2].contains("\"delta\":5"));
        assert!(lines[3].contains("\"type\":\"snapshot\""));
        assert!(lines[3].contains("\"c\":5"));
    }
}
