//! Immutable snapshots of a [`crate::Metrics`] registry: counter/gauge
//! values plus the finished span tree, with JSON and human-readable
//! renderings.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::{write_i64_map, write_json_string, write_key, write_u64_map};

/// One finished span: a named, timed region with nested children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanNode {
    pub name: String,
    pub duration: Duration,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Leaf span with no children.
    pub fn leaf(name: impl Into<String>, duration: Duration) -> Self {
        SpanNode { name: name.into(), duration, children: Vec::new() }
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "name");
        write_json_string(out, &self.name);
        out.push(',');
        write_key(out, "duration_ns");
        out.push_str(&self.duration.as_nanos().to_string());
        out.push(',');
        write_key(out, "children");
        out.push('[');
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Drained copy of one [`crate::Histogram`]: total count and sum plus the
/// power-of-two bucket populations (bucket 0 = zero values, bucket `i` =
/// `[2^(i-1), 2^i)`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Value at quantile `q` (0.0–1.0), resolved to the upper edge of the
    /// bucket the quantile falls in (0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
            }
        }
        u64::MAX
    }

    /// Median (bucket-resolved; see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (bucket-resolved).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of all recorded values (0 for an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "count");
        out.push_str(&self.count.to_string());
        out.push(',');
        write_key(out, "sum");
        out.push_str(&self.sum.to_string());
        out.push(',');
        write_key(out, "p50");
        out.push_str(&self.p50().to_string());
        out.push(',');
        write_key(out, "p99");
        out.push_str(&self.p99().to_string());
        out.push('}');
    }
}

/// Point-in-time copy of every counter, gauge, histogram, and finished
/// span.
///
/// Counter/gauge/histogram maps are `BTreeMap`s so iteration (and
/// therefore JSON output) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: Vec<SpanNode>,
}

impl MetricsSnapshot {
    /// Value of a counter, defaulting to 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, defaulting to 0 when never set.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a histogram, empty when never recorded to.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Compact single-line JSON object:
    /// `{"counters":{...},"gauges":{...},"spans":[...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        write_key(&mut out, "counters");
        write_u64_map(&mut out, self.counters.iter());
        out.push(',');
        write_key(&mut out, "gauges");
        write_i64_map(&mut out, self.gauges.iter());
        out.push(',');
        write_key(&mut out, "histograms");
        out.push('{');
        for (i, (name, histogram)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(&mut out, name);
            histogram.write_json(&mut out);
        }
        out.push('}');
        out.push(',');
        write_key(&mut out, "spans");
        out.push('[');
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Indented human-readable rendering: span tree first, then counters
    /// and gauges grouped by dotted prefix.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("phases:\n");
            for span in &self.spans {
                render_span(&mut out, span, 1);
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} mean={}ns p50={}ns p99={}ns\n",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p99()
                ));
            }
        }
        out
    }
}

fn render_span(out: &mut String, span: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    out.push_str(&format!("{indent}{:<32} {:>12.3?}\n", span.name, span.duration));
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("pli.hits".into(), 7);
        snap.counters.insert("pli.misses".into(), 3);
        snap.gauges.insert("walk.depth".into(), -2);
        snap.spans.push(SpanNode {
            name: "MUDS".into(),
            duration: Duration::from_nanos(100),
            children: vec![SpanNode::leaf("SPIDER", Duration::from_nanos(40))],
        });
        snap
    }

    #[test]
    fn json_is_deterministic_and_nested() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"pli.hits\":7,\"pli.misses\":3},\
             \"gauges\":{\"walk.depth\":-2},\
             \"histograms\":{},\
             \"spans\":[{\"name\":\"MUDS\",\"duration_ns\":100,\"children\":\
             [{\"name\":\"SPIDER\",\"duration_ns\":40,\"children\":[]}]}]}"
        );
    }

    #[test]
    fn histogram_json_reports_quantiles() {
        let mut snap = sample();
        let mut h = HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; 64] };
        // 99 values of ~1000ns (bucket 10: [512, 1024)), 1 of ~1e6ns.
        h.buckets[10] = 99;
        h.buckets[20] = 1;
        h.count = 100;
        h.sum = 99 * 1000 + 1_000_000;
        snap.histograms.insert("lat".into(), h);
        let json = snap.to_json();
        assert!(json.contains("\"lat\":{\"count\":100,\"sum\":1099000,\"p50\":1023,\"p99\":1023}"));
        let pretty = snap.render_pretty();
        assert!(pretty.contains("histograms:"), "{pretty}");
        assert!(pretty.contains("count=100"), "{pretty}");
    }

    #[test]
    fn histogram_quantiles_resolve_bucket_edges() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean(), 0);
        let mut h = HistogramSnapshot { count: 10, sum: 10, buckets: vec![0; 64] };
        h.buckets[0] = 5; // five zeros
        h.buckets[1] = 5; // five ones
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 0, "5th of 10 values is still a zero");
        assert_eq!(h.quantile(0.6), 1);
        assert_eq!(h.p99(), 1);
        assert_eq!(h.mean(), 1);
    }

    #[test]
    fn accessors_default_to_zero() {
        let snap = sample();
        assert_eq!(snap.counter("pli.hits"), 7);
        assert_eq!(snap.counter("nope"), 0);
        assert_eq!(snap.gauge("walk.depth"), -2);
        assert_eq!(snap.gauge("nope"), 0);
    }

    #[test]
    fn pretty_rendering_indents_children() {
        let text = sample().render_pretty();
        assert!(text.contains("phases:"));
        assert!(text.contains("    SPIDER"), "child indented two levels:\n{text}");
        assert!(text.contains("counters:"));
    }
}
