//! Immutable snapshots of a [`crate::Metrics`] registry: counter/gauge
//! values plus the finished span tree, with JSON and human-readable
//! renderings.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::{write_i64_map, write_json_string, write_key, write_u64_map};

/// One finished span: a named, timed region with nested children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanNode {
    pub name: String,
    pub duration: Duration,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Leaf span with no children.
    pub fn leaf(name: impl Into<String>, duration: Duration) -> Self {
        SpanNode { name: name.into(), duration, children: Vec::new() }
    }

    /// Depth of the subtree rooted here (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanNode::depth).max().unwrap_or(0)
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "name");
        write_json_string(out, &self.name);
        out.push(',');
        write_key(out, "duration_ns");
        out.push_str(&self.duration.as_nanos().to_string());
        out.push(',');
        write_key(out, "children");
        out.push('[');
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Drained copy of one [`crate::Histogram`]: total count and sum plus the
/// power-of-two bucket populations (bucket 0 = zero values, bucket `i` =
/// `[2^(i-1), 2^i)`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Value at quantile `q` (0.0–1.0), resolved to the upper edge of the
    /// bucket the quantile falls in (0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
            }
        }
        u64::MAX
    }

    /// Median (bucket-resolved; see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (bucket-resolved).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of all recorded values (0 for an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "count");
        out.push_str(&self.count.to_string());
        out.push(',');
        write_key(out, "sum");
        out.push_str(&self.sum.to_string());
        out.push(',');
        write_key(out, "p50");
        out.push_str(&self.p50().to_string());
        out.push(',');
        write_key(out, "p99");
        out.push_str(&self.p99().to_string());
        out.push('}');
    }
}

/// Point-in-time copy of every counter, gauge, histogram, and finished
/// span.
///
/// Counter/gauge/histogram maps are `BTreeMap`s so iteration (and
/// therefore JSON output) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: Vec<SpanNode>,
}

impl MetricsSnapshot {
    /// Value of a counter, defaulting to 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, defaulting to 0 when never set.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a histogram, empty when never recorded to.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Flattens the span tree into `(path, total_ns)` rows. See
    /// [`flatten_phases`].
    pub fn flatten_phases(&self) -> Vec<(String, u64)> {
        flatten_phases(&self.spans)
    }

    /// Compact single-line JSON object:
    /// `{"counters":{...},"gauges":{...},"spans":[...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        write_key(&mut out, "counters");
        write_u64_map(&mut out, self.counters.iter());
        out.push(',');
        write_key(&mut out, "gauges");
        write_i64_map(&mut out, self.gauges.iter());
        out.push(',');
        write_key(&mut out, "histograms");
        out.push('{');
        for (i, (name, histogram)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(&mut out, name);
            histogram.write_json(&mut out);
        }
        out.push('}');
        out.push(',');
        write_key(&mut out, "spans");
        out.push('[');
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Indented human-readable rendering: span tree first, then counters
    /// and gauges grouped by dotted prefix.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("phases:\n");
            for span in &self.spans {
                render_span(&mut out, span, 1);
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} mean={}ns p50={}ns p99={}ns\n",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p99()
                ));
            }
        }
        out
    }
}

/// Flattens a span forest into `(path, total_ns)` rows in pre-order,
/// joining nesting levels with `/` (`"MUDS/walk lattice"`). Repeated paths
/// — e.g. the per-task spans of a parallel phase — are summed into the
/// first occurrence, so the output is one row per distinct path and its
/// order is deterministic for any interleaving that preserves tree shape.
/// This is the phase table the bench writer embeds in `BENCH_*.json`.
pub fn flatten_phases(spans: &[SpanNode]) -> Vec<(String, u64)> {
    fn walk(out: &mut Vec<(String, u64)>, prefix: &str, span: &SpanNode) {
        let path =
            if prefix.is_empty() { span.name.clone() } else { format!("{prefix}/{}", span.name) };
        let ns = u64::try_from(span.duration.as_nanos()).unwrap_or(u64::MAX);
        match out.iter_mut().find(|(p, _)| *p == path) {
            Some((_, total)) => *total = total.saturating_add(ns),
            None => out.push((path.clone(), ns)),
        }
        for child in &span.children {
            walk(out, &path, child);
        }
    }
    let mut out = Vec::new();
    for span in spans {
        walk(&mut out, "", span);
    }
    out
}

fn render_span(out: &mut String, span: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    out.push_str(&format!("{indent}{:<32} {:>12.3?}\n", span.name, span.duration));
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("pli.hits".into(), 7);
        snap.counters.insert("pli.misses".into(), 3);
        snap.gauges.insert("walk.depth".into(), -2);
        snap.spans.push(SpanNode {
            name: "MUDS".into(),
            duration: Duration::from_nanos(100),
            children: vec![SpanNode::leaf("SPIDER", Duration::from_nanos(40))],
        });
        snap
    }

    #[test]
    fn json_is_deterministic_and_nested() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"pli.hits\":7,\"pli.misses\":3},\
             \"gauges\":{\"walk.depth\":-2},\
             \"histograms\":{},\
             \"spans\":[{\"name\":\"MUDS\",\"duration_ns\":100,\"children\":\
             [{\"name\":\"SPIDER\",\"duration_ns\":40,\"children\":[]}]}]}"
        );
    }

    #[test]
    fn histogram_json_reports_quantiles() {
        let mut snap = sample();
        let mut h = HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; 64] };
        // 99 values of ~1000ns (bucket 10: [512, 1024)), 1 of ~1e6ns.
        h.buckets[10] = 99;
        h.buckets[20] = 1;
        h.count = 100;
        h.sum = 99 * 1000 + 1_000_000;
        snap.histograms.insert("lat".into(), h);
        let json = snap.to_json();
        assert!(json.contains("\"lat\":{\"count\":100,\"sum\":1099000,\"p50\":1023,\"p99\":1023}"));
        let pretty = snap.render_pretty();
        assert!(pretty.contains("histograms:"), "{pretty}");
        assert!(pretty.contains("count=100"), "{pretty}");
    }

    #[test]
    fn histogram_quantiles_resolve_bucket_edges() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean(), 0);
        let mut h = HistogramSnapshot { count: 10, sum: 10, buckets: vec![0; 64] };
        h.buckets[0] = 5; // five zeros
        h.buckets[1] = 5; // five ones
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 0, "5th of 10 values is still a zero");
        assert_eq!(h.quantile(0.6), 1);
        assert_eq!(h.p99(), 1);
        assert_eq!(h.mean(), 1);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0, "q={q}");
        }
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.mean(), 0);
    }

    #[test]
    fn single_value_histogram_puts_every_quantile_in_its_bucket() {
        let h = crate::Histogram::detached();
        h.record(7); // bucket 3: [4, 8) → upper edge 7
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 7, "q={q}");
        }
        assert_eq!(snap.mean(), 7);
        // Out-of-range q clamps rather than panicking or escaping.
        assert_eq!(snap.quantile(-1.0), 7);
        assert_eq!(snap.quantile(2.0), 7);
    }

    /// Nearest-rank pin for the two-sample histogram: `rank =
    /// max(1, ceil(q·2))`, so every q ≤ 0.5 resolves to the lower sample
    /// and every q > 0.5 to the upper one. Guards the off-by-one where
    /// p50 of two samples reads the *upper* value (rank 2) or p99 the
    /// lower (rank 1).
    #[test]
    fn two_sample_histogram_rank_rounding_is_nearest_rank() {
        let h = crate::Histogram::detached();
        h.record(0); // bucket 0 → resolves to 0
        h.record(100); // bucket 7: [64, 128) → upper edge 127
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.quantile(0.0), 0, "rank clamps up to 1");
        assert_eq!(snap.quantile(0.49), 0, "ceil(0.98) = rank 1");
        assert_eq!(snap.p50(), 0, "p50 of two samples is the lower one (rank ceil(1.0) = 1)");
        assert_eq!(snap.quantile(0.51), 127, "ceil(1.02) = rank 2");
        assert_eq!(snap.p99(), 127, "p99 of two samples is the upper one (rank ceil(1.98) = 2)");
        assert_eq!(snap.quantile(1.0), 127);
        assert_eq!(snap.mean(), 50);

        // Two equal samples: every quantile lands in the shared bucket.
        let h = crate::Histogram::detached();
        h.record(5);
        h.record(5); // both bucket 3: [4, 8) → upper edge 7
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 7, "q={q}");
        }
    }

    #[test]
    fn saturating_values_land_in_the_top_bucket() {
        let h = crate::Histogram::detached();
        h.record(u64::MAX); // would index bucket 64; clamps to 63
        h.record(1u64 << 63);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.buckets[63], 2);
        // Top bucket resolves to its (saturated) upper edge, not u64::MAX.
        assert_eq!(snap.p99(), (1u64 << 63).wrapping_sub(1));
        // Sum saturates bucket math but still counts both observations.
        assert_eq!(snap.sum, u64::MAX.wrapping_add(1u64 << 63));
    }

    #[test]
    fn truncated_bucket_vector_degrades_to_max_sentinel() {
        // Defensive path: a snapshot whose cumulative bucket mass never
        // reaches the rank (can only happen to hand-built snapshots)
        // reports the "beyond every bucket" sentinel instead of looping.
        let h = HistogramSnapshot { count: 10, sum: 0, buckets: vec![1, 2] };
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert_eq!(h.quantile(0.1), 0, "rank 1 still resolves inside bucket 0");
    }

    #[test]
    fn flatten_phases_joins_paths_and_merges_repeats() {
        let mut snap = MetricsSnapshot::default();
        snap.spans.push(SpanNode {
            name: "MUDS".into(),
            duration: Duration::from_nanos(100),
            children: vec![
                SpanNode::leaf("walk", Duration::from_nanos(30)),
                SpanNode {
                    name: "spider".into(),
                    duration: Duration::from_nanos(40),
                    children: vec![SpanNode::leaf("walk", Duration::from_nanos(5))],
                },
                SpanNode::leaf("walk", Duration::from_nanos(12)),
            ],
        });
        snap.spans.push(SpanNode::leaf("report", Duration::from_nanos(9)));
        assert_eq!(
            snap.flatten_phases(),
            vec![
                ("MUDS".to_string(), 100),
                ("MUDS/walk".to_string(), 42), // 30 + 12, repeats merged
                ("MUDS/spider".to_string(), 40),
                ("MUDS/spider/walk".to_string(), 5),
                ("report".to_string(), 9),
            ]
        );
        assert_eq!(snap.spans[0].depth(), 3);
        assert_eq!(flatten_phases(&[]), Vec::new());
    }

    #[test]
    fn accessors_default_to_zero() {
        let snap = sample();
        assert_eq!(snap.counter("pli.hits"), 7);
        assert_eq!(snap.counter("nope"), 0);
        assert_eq!(snap.gauge("walk.depth"), -2);
        assert_eq!(snap.gauge("nope"), 0);
    }

    #[test]
    fn pretty_rendering_indents_children() {
        let text = sample().render_pretty();
        assert!(text.contains("phases:"));
        assert!(text.contains("    SPIDER"), "child indented two levels:\n{text}");
        assert!(text.contains("counters:"));
    }
}
