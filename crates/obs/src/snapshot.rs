//! Immutable snapshots of a [`crate::Metrics`] registry: counter/gauge
//! values plus the finished span tree, with JSON and human-readable
//! renderings.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::{write_i64_map, write_json_string, write_key, write_u64_map};

/// One finished span: a named, timed region with nested children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanNode {
    pub name: String,
    pub duration: Duration,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Leaf span with no children.
    pub fn leaf(name: impl Into<String>, duration: Duration) -> Self {
        SpanNode { name: name.into(), duration, children: Vec::new() }
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "name");
        write_json_string(out, &self.name);
        out.push(',');
        write_key(out, "duration_ns");
        out.push_str(&self.duration.as_nanos().to_string());
        out.push(',');
        write_key(out, "children");
        out.push('[');
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Point-in-time copy of every counter, gauge, and finished span.
///
/// Counter/gauge maps are `BTreeMap`s so iteration (and therefore JSON
/// output) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub spans: Vec<SpanNode>,
}

impl MetricsSnapshot {
    /// Value of a counter, defaulting to 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, defaulting to 0 when never set.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Compact single-line JSON object:
    /// `{"counters":{...},"gauges":{...},"spans":[...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        write_key(&mut out, "counters");
        write_u64_map(&mut out, self.counters.iter());
        out.push(',');
        write_key(&mut out, "gauges");
        write_i64_map(&mut out, self.gauges.iter());
        out.push(',');
        write_key(&mut out, "spans");
        out.push('[');
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Indented human-readable rendering: span tree first, then counters
    /// and gauges grouped by dotted prefix.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("phases:\n");
            for span in &self.spans {
                render_span(&mut out, span, 1);
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        out
    }
}

fn render_span(out: &mut String, span: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    out.push_str(&format!("{indent}{:<32} {:>12.3?}\n", span.name, span.duration));
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("pli.hits".into(), 7);
        snap.counters.insert("pli.misses".into(), 3);
        snap.gauges.insert("walk.depth".into(), -2);
        snap.spans.push(SpanNode {
            name: "MUDS".into(),
            duration: Duration::from_nanos(100),
            children: vec![SpanNode::leaf("SPIDER", Duration::from_nanos(40))],
        });
        snap
    }

    #[test]
    fn json_is_deterministic_and_nested() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"pli.hits\":7,\"pli.misses\":3},\
             \"gauges\":{\"walk.depth\":-2},\
             \"spans\":[{\"name\":\"MUDS\",\"duration_ns\":100,\"children\":\
             [{\"name\":\"SPIDER\",\"duration_ns\":40,\"children\":[]}]}]}"
        );
    }

    #[test]
    fn accessors_default_to_zero() {
        let snap = sample();
        assert_eq!(snap.counter("pli.hits"), 7);
        assert_eq!(snap.counter("nope"), 0);
        assert_eq!(snap.gauge("walk.depth"), -2);
        assert_eq!(snap.gauge("nope"), 0);
    }

    #[test]
    fn pretty_rendering_indents_children() {
        let text = sample().render_pretty();
        assert!(text.contains("phases:"));
        assert!(text.contains("    SPIDER"), "child indented two levels:\n{text}");
        assert!(text.contains("counters:"));
    }
}
