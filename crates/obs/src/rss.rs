//! Peak-RSS self-sampling for the bench harness.
//!
//! Linux exposes a process's resident set in `/proc/self/status` (`VmRSS`,
//! with the kernel-maintained lifetime high-water mark in `VmHWM`). The
//! kernel's `VmHWM` is useless for *per-scenario* peaks — it never goes
//! back down — so [`RssSampler`] runs its own sampler thread that polls
//! `VmRSS` at a fixed interval and keeps the maximum seen inside the
//! sampled window. On platforms without procfs every probe returns `None`
//! and the sampler degrades to a no-op that reports a zero peak; callers
//! surface that as `peak_rss_bytes: 0` rather than failing.
//!
//! The peak is an atomic high-water mark (`fetch_max`), so concurrent
//! readers calling [`RssSampler::peak_bytes`] observe a monotone
//! non-decreasing sequence even while the sampler thread is still
//! running.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Reads one field of `/proc/self/status` given its `Vm*:` label, in
/// bytes. The file reports kB.
#[cfg(target_os = "linux")]
fn proc_status_bytes(label: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        let Some(rest) = line.strip_prefix(label) else { continue };
        let rest = rest.strip_prefix(':')?;
        let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
        return Some(kb * 1024);
    }
    None
}

/// Current resident set size in bytes, if the platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmRSS")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Process-lifetime peak RSS in bytes (`VmHWM`), if the platform exposes
/// it. Prefer an [`RssSampler`] window when attributing memory to one
/// measured region.
pub fn lifetime_peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmHWM")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Final report of one sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssSample {
    /// Highest `VmRSS` observed in the window (0 when the platform has no
    /// probe).
    pub peak_bytes: u64,
    /// How many probes the window took (at least 1 on platforms with a
    /// probe: start and stop both sample synchronously).
    pub samples: u64,
}

/// Background sampler tracking the peak RSS over one measurement window.
///
/// `start` probes once synchronously (so even a window shorter than the
/// interval reports a real peak), then spawns a thread probing every
/// `interval` until [`RssSampler::stop`] joins it with a final probe.
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    peak: Arc<AtomicU64>,
    samples: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl RssSampler {
    pub fn start(interval: Duration) -> RssSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicU64::new(0));
        let samples = Arc::new(AtomicU64::new(0));
        probe(&peak, &samples);
        let handle = {
            let stop = Arc::clone(&stop);
            let peak = Arc::clone(&peak);
            let samples = Arc::clone(&samples);
            thread::Builder::new()
                .name("muds-rss-sampler".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        // park_timeout may wake spuriously or early via
                        // unpark; the loop re-checks the flag either way.
                        thread::park_timeout(interval);
                        probe(&peak, &samples);
                    }
                })
                .ok()
        };
        RssSampler { stop, peak, samples, handle }
    }

    /// Highest RSS observed so far in this window. Monotone non-decreasing
    /// across calls; 0 on platforms without a probe.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Acquire)
    }

    /// Stops the sampler thread, takes one final probe, and returns the
    /// window's report.
    pub fn stop(mut self) -> RssSample {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            // lint:allow(swallowed-result): the sampler loop has no panic
            // paths of its own; a poisoned join must not lose the report.
            let _ = handle.join();
        }
        probe(&self.peak, &self.samples);
        RssSample {
            peak_bytes: self.peak.load(Ordering::Acquire),
            samples: self.samples.load(Ordering::Acquire),
        }
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            // lint:allow(swallowed-result): panicking in Drop would abort.
            let _ = handle.join();
        }
    }
}

fn probe(peak: &AtomicU64, samples: &AtomicU64) {
    if let Some(rss) = current_rss_bytes() {
        peak.fetch_max(rss, Ordering::AcqRel);
        samples.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_reports_a_window_peak() {
        let sampler = RssSampler::start(Duration::from_millis(1));
        // Touch enough pages that the RSS probe has something to see.
        let ballast: Vec<u8> = (0..8 * 1024 * 1024).map(|i| (i % 251) as u8).collect();
        let mid = sampler.peak_bytes();
        let report = sampler.stop();
        assert!(ballast.iter().map(|&b| b as u64).sum::<u64>() > 0);
        if cfg!(target_os = "linux") {
            assert!(report.samples >= 2, "start + stop probes at minimum");
            assert!(report.peak_bytes > 0);
            assert!(report.peak_bytes >= mid, "stop never lowers the peak");
            assert!(
                report.peak_bytes >= current_rss_bytes().unwrap_or(0) / 4,
                "window peak is in the ballpark of the live RSS"
            );
        } else {
            assert_eq!(report.peak_bytes, 0, "no-op fallback reports zero");
        }
    }

    #[test]
    fn peaks_are_monotone_under_concurrent_load() {
        let sampler = RssSampler::start(Duration::from_millis(1));
        let observed = std::thread::scope(|s| {
            // Writer threads grow and drop allocations while a reader
            // polls the peak; the high-water mark must never move down.
            for t in 0..2 {
                s.spawn(move || {
                    for round in 1..=8usize {
                        let block = vec![(t + round) as u8; round * 512 * 1024];
                        std::hint::black_box(&block);
                    }
                });
            }
            let reader = s.spawn(|| {
                let mut seen = Vec::with_capacity(64);
                for _ in 0..50 {
                    seen.push(sampler.peak_bytes());
                    thread::yield_now();
                }
                seen
            });
            reader.join().expect("reader thread")
        });
        assert!(observed.windows(2).all(|w| w[0] <= w[1]), "peaks regressed: {observed:?}");
        let report = sampler.stop();
        assert!(report.peak_bytes >= *observed.last().unwrap());
    }

    #[test]
    fn lifetime_peak_is_at_least_the_current_rss() {
        match (current_rss_bytes(), lifetime_peak_rss_bytes()) {
            (Some(now), Some(hwm)) => assert!(hwm >= now / 2, "hwm={hwm} now={now}"),
            (None, None) => {} // portable fallback
            other => panic!("probes disagree about platform support: {other:?}"),
        }
    }
}
