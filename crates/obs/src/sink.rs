//! Pluggable event sinks. A sink receives span lifecycle events and
//! snapshot dumps as they happen; the JSONL sink streams them to a file so
//! a run can be traced after the fact, the no-op sink costs one virtual
//! call that the branch predictor eats (and is skipped entirely by the
//! `Metrics` fast path, which only dispatches when a real sink is set).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::Duration;

use crate::json::{write_json_string, write_key};
use crate::snapshot::MetricsSnapshot;

/// One instrumentation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// A span opened. `depth` is the nesting level (0 = root).
    SpanStart { name: &'a str, depth: usize },
    /// A span closed, with its measured duration.
    SpanEnd { name: &'a str, depth: usize, duration: Duration },
    /// A counter was explicitly published (bulk flushes from algorithm
    /// layers; per-`inc` events would be absurdly hot).
    CounterAdd { name: &'a str, delta: u64 },
    /// A full snapshot was drained (end of a profiled run).
    Snapshot { snapshot: &'a MetricsSnapshot },
}

impl Event<'_> {
    /// Serializes the event as one JSON object (one JSONL line, sans
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Event::SpanStart { name, depth } => {
                out.push_str("{\"type\":\"span_start\",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(&format!(",\"depth\":{depth}}}"));
            }
            Event::SpanEnd { name, depth, duration } => {
                out.push_str("{\"type\":\"span_end\",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(&format!(
                    ",\"depth\":{depth},\"duration_ns\":{}}}",
                    duration.as_nanos()
                ));
            }
            Event::CounterAdd { name, delta } => {
                out.push_str("{\"type\":\"counter\",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(&format!(",\"delta\":{delta}}}"));
            }
            Event::Snapshot { snapshot } => {
                out.push_str("{\"type\":\"snapshot\",");
                write_key(&mut out, "metrics");
                out.push_str(&snapshot.to_json());
                out.push('}');
            }
        }
        out
    }
}

/// Receiver of instrumentation events. `Send` because a registry (and the
/// sink boxed inside it) may be shared across the parallel execution
/// layer's worker threads; emission itself is serialized by the registry.
pub trait EventSink: Send {
    /// Handles one event.
    fn emit(&mut self, event: &Event<'_>);

    /// Flushes buffered output (end of run).
    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event<'_>) {}
}

/// Streams events as JSON Lines to a writer (typically a file).
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncates) `path` and streams events to it.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlSink { writer: BufWriter::new(File::create(path)?) })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event<'_>) {
        // A failed trace write must not abort a profiling run; drop the
        // event instead.
        // lint:allow(swallowed-result): tracing is best-effort by design.
        let _ = writeln!(self.writer, "{}", event.to_json());
    }

    fn flush(&mut self) {
        // lint:allow(swallowed-result): tracing is best-effort by design.
        let _ = self.writer.flush();
    }
}

/// Collects events in memory — for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Vec<String>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// JSONL lines received so far.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event<'_>) {
        self.lines.push(event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_events_serialize() {
        let e = Event::SpanEnd { name: "DUCC", depth: 1, duration: Duration::from_nanos(42) };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"span_end\",\"name\":\"DUCC\",\"depth\":1,\"duration_ns\":42}"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.emit(&Event::SpanStart { name: "a", depth: 0 });
            sink.emit(&Event::CounterAdd { name: "c", delta: 3 });
            sink.flush();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("span_start"));
        assert!(lines[1].contains("\"delta\":3"));
    }
}
