//! Minimal JSON emission — just enough to serialize snapshots and events
//! without pulling serde into a zero-dependency crate.

/// Appends the JSON string literal for `s` (quotes and escapes included)
/// to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `"key":` fragment.
pub fn write_key(out: &mut String, key: &str) {
    write_json_string(out, key);
    out.push(':');
}

/// Writes `{"k":v,...}` for string→u64 pairs in iteration order.
pub fn write_u64_map<'a, I: Iterator<Item = (&'a String, &'a u64)>>(out: &mut String, it: I) {
    out.push('{');
    for (i, (k, v)) in it.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, k);
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// Writes `{"k":v,...}` for string→i64 pairs in iteration order.
pub fn write_i64_map<'a, I: Iterator<Item = (&'a String, &'a i64)>>(out: &mut String, it: I) {
    out.push('{');
    for (i, (k, v)) in it.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, k);
        out.push_str(&v.to_string());
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn maps_render_in_order() {
        let mut out = String::new();
        let pairs = [("a".to_string(), 1u64), ("b".to_string(), 2)];
        write_u64_map(&mut out, pairs.iter().map(|(k, v)| (k, v)));
        assert_eq!(out, "{\"a\":1,\"b\":2}");
    }
}
