//! Position list indexes (stripped partitions) and the shared PLI cache.
//!
//! The partition machinery behind UCC and FD discovery: see [`Pli`] for the
//! data structure and refinement checks, and [`PliCache`] for the memoized
//! provider shared across the holistic algorithm's tasks (§3 of the paper).

mod agree;
mod cache;
mod pli;

pub use agree::{agree_sets, maximal_sets};
pub use cache::{PliCache, PliCacheStats};
pub use pli::{Pli, RowId};
