//! Shared PLI cache — the "holistic data structure" of §3.
//!
//! All three discovery tasks intersect PLIs for overlapping column
//! combinations. The cache memoizes them behind a [`ColumnSet`] key so DUCC,
//! the MUDS FD phases, FUN and TANE reuse each other's work instead of
//! recomputing — one of the paper's three sources of holistic speed-up
//! (shared data structures). Single-column PLIs (and the empty-set PLI) are
//! pinned; larger combinations live in a bounded LRU so wide lattices do not
//! exhaust memory.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use muds_lattice::ColumnSet;
use muds_table::Table;
use rayon::prelude::*;

use crate::pli::Pli;

/// Work counters for a [`PliCache`]. These are the quantities the paper's
/// phase analysis (§6.4) talks about: "the primary time-consuming operation
/// is the PLI intersect".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PliCacheStats {
    /// PLI intersect operations performed.
    pub intersects: u64,
    /// Cache hits (PLI served without any intersect).
    pub hits: u64,
    /// Cache misses (PLI had to be computed).
    pub misses: u64,
    /// Entries evicted from the LRU region.
    pub evictions: u64,
    /// Partition-refinement FD checks (`Pli::refines`).
    pub refinement_checks: u64,
}

/// Handles into the ambient [`muds_obs::Metrics`] registry, resolved once
/// at cache construction so the hot path pays one `Cell` add per event and
/// never touches the name→counter map. When no registry is installed the
/// handles are detached cells and the adds are dead stores.
struct PliMeters {
    requests: muds_obs::Counter,
    hits: muds_obs::Counter,
    misses: muds_obs::Counter,
    intersects: muds_obs::Counter,
    evictions: muds_obs::Counter,
    refinement_checks: muds_obs::Counter,
}

impl PliMeters {
    fn bind() -> Self {
        PliMeters {
            requests: muds_obs::counter("pli.requests"),
            hits: muds_obs::counter("pli.hits"),
            misses: muds_obs::counter("pli.misses"),
            intersects: muds_obs::counter("pli.intersects"),
            evictions: muds_obs::counter("pli.evictions"),
            refinement_checks: muds_obs::counter("pli.refinement_checks"),
        }
    }
}

/// A memoizing provider of PLIs for arbitrary column combinations of one
/// table.
///
/// The cache itself is `&mut`-owned by the coordinating thread and needs no
/// interior mutability: the batch entry points ([`PliCache::get_many`],
/// [`PliCache::refines_many`]) keep all bookkeeping (stats, LRU stamps,
/// inserts) sequential and fan only the pure PLI work (intersects,
/// refinement scans) out to worker threads. Handing out `Arc<Pli>` lets
/// workers share the cached partitions without copying.
pub struct PliCache<'a> {
    table: &'a Table,
    /// Pinned PLIs: empty set and singletons, indexed by column.
    empty: Arc<Pli>,
    singles: Vec<Arc<Pli>>,
    /// LRU region for multi-column combinations.
    entries: HashMap<ColumnSet, (Arc<Pli>, u64)>,
    /// Stamp-ordered mirror of `entries` (stamps are unique), so eviction
    /// pops the oldest entry in O(log n) instead of scanning the map —
    /// under capacity pressure (wide tables flood the cache with prefix
    /// PLIs) a per-insert scan turns every miss into O(capacity).
    lru: BTreeMap<u64, ColumnSet>,
    capacity: usize,
    /// Optional ceiling on the *estimated* byte footprint of the LRU
    /// region (pinned singletons excluded — they are the working set every
    /// algorithm needs). `None` = entry-count bound only.
    byte_budget: Option<usize>,
    /// Running estimated byte footprint of the LRU region.
    lru_bytes: usize,
    tick: u64,
    stats: PliCacheStats,
    meters: PliMeters,
}

impl<'a> PliCache<'a> {
    /// Default LRU capacity for multi-column PLIs.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Creates a cache over `table`, eagerly building the single-column
    /// PLIs (this is the PLI-construction step MUDS performs while reading
    /// the input, §5).
    pub fn new(table: &'a Table) -> Self {
        Self::with_capacity(table, Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache with a custom LRU capacity (≥ 1).
    pub fn with_capacity(table: &'a Table, capacity: usize) -> Self {
        // Per-column PLI construction is independent work: build in
        // parallel, collecting in schema order.
        let singles: Vec<Arc<Pli>> =
            table.columns().par_iter().map(|c| Arc::new(Pli::from_column(c))).collect();
        PliCache {
            table,
            empty: Arc::new(Pli::empty_set(table.num_rows())),
            singles,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            capacity: capacity.max(1),
            byte_budget: None,
            lru_bytes: 0,
            tick: 0,
            stats: PliCacheStats::default(),
            meters: PliMeters::bind(),
        }
    }

    /// Creates a cache over `table` seeded with externally maintained
    /// single-column PLIs instead of rebuilding them — the delta path:
    /// `Pli::apply_append` / `Pli::apply_delete` carry the old table's
    /// singletons across a mutation, and the revalidator hands them here.
    ///
    /// Panics if `singles` does not line up with the table (one PLI per
    /// column, each over `table.num_rows()` rows).
    pub fn with_singles(table: &'a Table, singles: Vec<Arc<Pli>>) -> Self {
        assert_eq!(singles.len(), table.num_columns(), "one singleton PLI per column");
        assert!(
            singles.iter().all(|p| p.num_rows() == table.num_rows()),
            "singleton PLIs must cover the table's rows"
        );
        PliCache {
            table,
            empty: Arc::new(Pli::empty_set(table.num_rows())),
            singles,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            capacity: Self::DEFAULT_CAPACITY,
            byte_budget: None,
            lru_bytes: 0,
            tick: 0,
            stats: PliCacheStats::default(),
            meters: PliMeters::bind(),
        }
    }

    /// Caps the estimated byte footprint of the LRU region, evicting (LRU
    /// order) whenever an insert pushes past the budget. This is how a
    /// serving layer enforces a per-job memory ceiling on top of the
    /// entry-count bound. Setting a budget below the current footprint
    /// evicts immediately.
    pub fn set_byte_budget(&mut self, budget: Option<usize>) {
        self.byte_budget = budget;
        self.evict_over_budget();
    }

    /// Approximate heap footprint of everything the cache holds: the
    /// pinned singleton PLIs plus the LRU region. An accounting estimate
    /// (see [`Pli::estimated_bytes`]), suitable for budget enforcement and
    /// metrics, not heap profiling.
    pub fn estimated_bytes(&self) -> usize {
        let pinned: usize = self.singles.iter().map(|p| p.estimated_bytes()).sum::<usize>()
            + self.empty.estimated_bytes();
        pinned + self.lru_bytes
    }

    fn evict_lru_one(&mut self) -> bool {
        if let Some((&oldest, &victim)) = self.lru.iter().next() {
            self.lru.remove(&oldest);
            if let Some((pli, _)) = self.entries.remove(&victim) {
                self.lru_bytes = self.lru_bytes.saturating_sub(pli.estimated_bytes());
            }
            self.stats.evictions += 1;
            self.meters.evictions.inc();
            true
        } else {
            false
        }
    }

    fn evict_over_budget(&mut self) {
        if let Some(budget) = self.byte_budget {
            while self.lru_bytes > budget && self.evict_lru_one() {}
        }
    }

    /// The table this cache serves.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Work counters so far.
    pub fn stats(&self) -> &PliCacheStats {
        &self.stats
    }

    /// Resets the work counters (the cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = PliCacheStats::default();
    }

    /// Returns the PLI of `set`, computing and caching it if necessary.
    ///
    /// Multi-column PLIs are assembled by intersecting the PLI of
    /// `set \ {max}` with the single-column PLI of `max`, so a chain of
    /// related look-ups (as produced by lattice traversals) reuses cached
    /// prefixes.
    pub fn get(&mut self, set: &ColumnSet) -> Arc<Pli> {
        self.meters.requests.inc();
        match set.cardinality() {
            0 => {
                self.stats.hits += 1;
                self.meters.hits.inc();
                Arc::clone(&self.empty)
            }
            1 => {
                self.stats.hits += 1;
                self.meters.hits.inc();
                // lint:allow(panic): this match arm is cardinality() == 1,
                // so min_col() always yields a column.
                Arc::clone(&self.singles[set.min_col().expect("non-empty")])
            }
            _ => {
                self.tick += 1;
                let tick = self.tick;
                if let Some((pli, stamp)) = self.entries.get_mut(set) {
                    self.lru.remove(stamp);
                    self.lru.insert(tick, *set);
                    *stamp = tick;
                    self.stats.hits += 1;
                    self.meters.hits.inc();
                    return Arc::clone(pli);
                }
                self.stats.misses += 1;
                self.meters.misses.inc();
                // lint:allow(panic): this match arm is cardinality() >= 2,
                // so max_col() always yields a column.
                let last = set.max_col().expect("non-empty");
                let rest = set.without(last);
                let left = self.get(&rest);
                let right = Arc::clone(&self.singles[last]);
                self.stats.intersects += 1;
                self.meters.intersects.inc();
                let pli = Arc::new(left.intersect(&right));
                self.insert_at(*set, Arc::clone(&pli), tick);
                pli
            }
        }
    }

    /// Batch [`PliCache::get`]: resolves every set, computing the PLIs that
    /// miss with their final intersections fanned out in parallel.
    ///
    /// Bookkeeping runs sequentially in `sets` order — request/hit/miss
    /// accounting, LRU ticks, prefix materialization, and (after the
    /// parallel region) the inserts, each stamped with the tick of the
    /// request that missed. Counters and cache state are therefore
    /// identical for every thread count. They also match issuing the
    /// `get`s one by one, except under LRU pressure (batched inserts land
    /// after all of the batch's requests, so eviction timing can differ)
    /// and for batches containing both a set and a strict prefix of it,
    /// which compute correctly but may duplicate an intersect a
    /// sequential caller would have reused (callers pass one lattice
    /// level at a time, where neither arises).
    pub fn get_many(&mut self, sets: &[ColumnSet]) -> Vec<Arc<Pli>> {
        enum Slot {
            Ready(Arc<Pli>),
            Job(usize),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(sets.len());
        // Pending computations: (set, left operand, right operand, stamp).
        let mut jobs: Vec<(ColumnSet, Arc<Pli>, Arc<Pli>, u64)> = Vec::new();
        let mut job_of: HashMap<ColumnSet, usize> = HashMap::new();
        for set in sets {
            if set.cardinality() < 2 || self.entries.contains_key(set) {
                slots.push(Slot::Ready(self.get(set)));
                continue;
            }
            self.meters.requests.inc();
            self.tick += 1;
            let tick = self.tick;
            if let Some(&job) = job_of.get(set) {
                // Duplicate within the batch: a sequential caller would hit
                // the entry the first occurrence inserted; count it as a
                // hit and refresh the pending stamp accordingly.
                self.stats.hits += 1;
                self.meters.hits.inc();
                jobs[job].3 = tick;
                slots.push(Slot::Job(job));
                continue;
            }
            self.stats.misses += 1;
            self.meters.misses.inc();
            // lint:allow(panic): jobs are only enqueued for sets of
            // cardinality >= 2 (the singles arm returns earlier).
            let last = set.max_col().expect("cardinality >= 2");
            let rest = set.without(last);
            let left = self.get(&rest);
            let right = Arc::clone(&self.singles[last]);
            self.stats.intersects += 1;
            self.meters.intersects.inc();
            job_of.insert(*set, jobs.len());
            slots.push(Slot::Job(jobs.len()));
            jobs.push((*set, left, right, tick));
        }
        let computed: Vec<Arc<Pli>> = if jobs.len() <= 1 {
            jobs.iter().map(|(_, left, right, _)| Arc::new(left.intersect(right))).collect()
        } else {
            jobs.par_iter().map(|(_, left, right, _)| Arc::new(left.intersect(right))).collect()
        };
        for ((set, _, _, stamp), pli) in jobs.iter().zip(&computed) {
            self.insert_at(*set, Arc::clone(pli), *stamp);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(pli) => pli,
                Slot::Job(job) => Arc::clone(&computed[job]),
            })
            .collect()
    }

    fn insert_at(&mut self, set: ColumnSet, pli: Arc<Pli>, stamp: u64) {
        if self.entries.len() >= self.capacity {
            // Evict the least recently used entry. Stamps are unique (every
            // multi-column request advances the tick), so the victim — and
            // therefore the whole eviction sequence — is deterministic.
            self.evict_lru_one();
        }
        self.lru_bytes += pli.estimated_bytes();
        if let Some((old_pli, old_stamp)) = self.entries.insert(set, (pli, stamp)) {
            self.lru.remove(&old_stamp);
            self.lru_bytes = self.lru_bytes.saturating_sub(old_pli.estimated_bytes());
        }
        self.lru.insert(stamp, set);
        // The byte budget may demand more than the one-entry eviction the
        // count bound performed — including, for a pathologically large
        // PLI, the entry just inserted (the returned Arc stays valid).
        self.evict_over_budget();
    }

    /// Column count beyond which validity checks stream their intersection
    /// instead of materializing every prefix PLI via [`PliCache::get`].
    const STREAM_THRESHOLD: usize = 16;

    /// Intersects the singleton PLIs of `set` smallest-first, without
    /// caching intermediates, stopping as soon as the partition strips
    /// empty (an empty stripped partition refines every column and stays
    /// empty under further intersection).
    fn stream_intersect(&mut self, set: &ColumnSet) -> Pli {
        // A single-class partition covering every row (a constant column)
        // is an identity operand of `intersect`; dropping such columns up
        // front turns checks over mostly-constant wide sets from chains of
        // full-table copies into one or two real intersections.
        let mut cols: Vec<usize> = set
            .iter()
            .filter(|&c| {
                let p = &self.singles[c];
                !(p.cluster_count() == 1 && p.size() == p.num_rows())
            })
            .collect();
        if cols.is_empty() {
            // Every column is constant: the intersection is any one of them.
            // lint:allow(panic): callers pass non-empty sets (the empty
            // set is served from the dedicated empty PLI earlier).
            return (*self.singles[set.iter().next().expect("non-empty set")]).clone();
        }
        cols.sort_by_key(|&c| self.singles[c].size());
        // lint:allow(panic): cols.is_empty() returned two lines above, so
        // index 0 exists.
        let mut acc = (*self.singles[cols[0]]).clone();
        for &c in &cols[1..] {
            if acc.is_unique() {
                break;
            }
            self.stats.intersects += 1;
            self.meters.intersects.inc();
            acc = acc.intersect(&self.singles[c]);
        }
        acc
    }

    /// Resolves the PLI backing a validity check (`is_unique`,
    /// `determines`): the regular caching path for small or already-cached
    /// sets, the streaming early-exit path for large uncached ones.
    ///
    /// Lattice walks over wide universes (at the 256-column boundary)
    /// probe hundreds of distinct large sets with near-zero prefix
    /// overlap; routing them through `get` would perform |set| intersects
    /// per probe *and* flood the LRU with prefixes nothing reuses. The
    /// streaming result is not cached; verdict-level memoization is the
    /// caller's job (walk memo, `FdKnowledge`). Streamed requests are
    /// accounted as misses so `requests == hits + misses` stays true.
    fn get_for_check(&mut self, set: &ColumnSet) -> Arc<Pli> {
        if set.cardinality() <= Self::STREAM_THRESHOLD || self.entries.contains_key(set) {
            return self.get(set);
        }
        self.meters.requests.inc();
        self.stats.misses += 1;
        self.meters.misses.inc();
        Arc::new(self.stream_intersect(set))
    }

    /// Number of distinct values of the projection on `set` (Lemma 1's
    /// `|X|_r`).
    pub fn distinct_count(&mut self, set: &ColumnSet) -> usize {
        self.get(set).distinct_count()
    }

    /// True iff `set` is a unique column combination.
    pub fn is_unique(&mut self, set: &ColumnSet) -> bool {
        self.get_for_check(set).is_unique()
    }

    /// Partition-refinement FD check: true iff `lhs → rhs_col` holds.
    /// Trivial FDs (`rhs_col ∈ lhs`) are true by definition.
    pub fn determines(&mut self, lhs: &ColumnSet, rhs_col: usize) -> bool {
        if lhs.contains(rhs_col) {
            return true;
        }
        self.stats.refinement_checks += 1;
        self.meters.refinement_checks.inc();
        let pli = self.get_for_check(lhs);
        pli.refines(self.table.column(rhs_col).codes())
    }

    /// Batch [`PliCache::determines`]: evaluates `lhs → rhs` for every pair
    /// in `checks`, fanning the partition-refinement scans out in parallel.
    ///
    /// Bookkeeping mirrors per-pair `determines` calls exactly and stays
    /// sequential in input order: trivial checks (`rhs ∈ lhs`) answer true
    /// without touching counters, every real check bumps
    /// `refinement_checks` and materializes its left-hand PLI via
    /// [`PliCache::get`] (hits after the first occurrence of an `lhs`).
    /// Only the pure `Pli::refines` scans run on worker threads, so stats,
    /// cache state, and verdict order are thread-count independent.
    pub fn refines_many(&mut self, checks: &[(ColumnSet, usize)]) -> Vec<bool> {
        enum Slot {
            Trivial,
            Job(usize),
        }
        let table = self.table;
        let mut slots: Vec<Slot> = Vec::with_capacity(checks.len());
        let mut jobs: Vec<(Arc<Pli>, &[u32])> = Vec::new();
        for (lhs, rhs) in checks {
            if lhs.contains(*rhs) {
                slots.push(Slot::Trivial);
                continue;
            }
            self.stats.refinement_checks += 1;
            self.meters.refinement_checks.inc();
            let pli = self.get_for_check(lhs);
            slots.push(Slot::Job(jobs.len()));
            jobs.push((pli, table.column(*rhs).codes()));
        }
        let verdicts: Vec<bool> = if jobs.len() <= 1 {
            jobs.iter().map(|(pli, codes)| pli.refines(codes)).collect()
        } else {
            jobs.par_iter().map(|(pli, codes)| pli.refines(codes)).collect()
        };
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Trivial => true,
                Slot::Job(job) => verdicts[job],
            })
            .collect()
    }

    /// Number of multi-column entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Table;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    fn table() -> Table {
        // a: 1 1 2 2 ; b: x y x y ; c: p p p q ; d = a (copy)
        Table::from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                vec!["1", "x", "p", "1"],
                vec!["1", "y", "p", "1"],
                vec!["2", "x", "p", "2"],
                vec!["2", "y", "q", "2"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn singletons_are_pinned_hits() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let p = cache.get(&cs(&[0]));
        assert_eq!(p.distinct_count(), 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn multi_column_composed_and_cached() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let ab = cache.get(&cs(&[0, 1]));
        assert!(ab.is_unique()); // (a,b) pairs are all distinct
        assert_eq!(cache.stats().intersects, 1);
        // Second request is a hit, no further intersects.
        let _ = cache.get(&cs(&[0, 1]));
        assert_eq!(cache.stats().intersects, 1);
        assert!(cache.stats().hits >= 1);
    }

    #[test]
    fn chained_lookup_reuses_prefix() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let _ = cache.get(&cs(&[0, 1]));
        let before = cache.stats().intersects;
        let _ = cache.get(&cs(&[0, 1, 2]));
        // {0,1,2} = {0,1} ∩ {2}: exactly one extra intersect.
        assert_eq!(cache.stats().intersects, before + 1);
    }

    #[test]
    fn distinct_counts_match_direct_computation() {
        let t = table();
        let mut cache = PliCache::new(&t);
        assert_eq!(cache.distinct_count(&cs(&[])), 1);
        assert_eq!(cache.distinct_count(&cs(&[2])), 2);
        assert_eq!(cache.distinct_count(&cs(&[0, 2])), 3);
        assert_eq!(cache.distinct_count(&cs(&[0, 1, 2, 3])), 4);
    }

    #[test]
    fn determines_matches_semantics() {
        let t = table();
        let mut cache = PliCache::new(&t);
        // d is a copy of a: a → d and d → a.
        assert!(cache.determines(&cs(&[0]), 3));
        assert!(cache.determines(&cs(&[3]), 0));
        // a does not determine b.
        assert!(!cache.determines(&cs(&[0]), 1));
        // {a,b} is a key: determines everything.
        assert!(cache.determines(&cs(&[0, 1]), 2));
        // Trivial FD.
        assert!(cache.determines(&cs(&[0]), 0));
    }

    #[test]
    fn empty_lhs_determines_constants_only() {
        let t = Table::from_rows("t", &["k", "v"], &[vec!["c", "1"], vec!["c", "2"]]).unwrap();
        let mut cache = PliCache::new(&t);
        assert!(cache.determines(&ColumnSet::empty(), 0));
        assert!(!cache.determines(&ColumnSet::empty(), 1));
    }

    #[test]
    fn eviction_keeps_capacity_bounded() {
        let t = table();
        let mut cache = PliCache::with_capacity(&t, 2);
        let _ = cache.get(&cs(&[0, 1]));
        let _ = cache.get(&cs(&[0, 2]));
        let _ = cache.get(&cs(&[1, 2]));
        assert!(cache.cached_entries() <= 2);
        assert!(cache.stats().evictions >= 1);
        // Evicted entries are recomputed correctly.
        assert!(cache.get(&cs(&[0, 1])).is_unique());
    }

    #[test]
    fn obs_counters_mirror_stats() {
        let metrics = muds_obs::Metrics::new();
        let _guard = metrics.install();
        let t = table();
        let mut cache = PliCache::new(&t);
        let _ = cache.get(&cs(&[0, 1]));
        let _ = cache.get(&cs(&[0, 1]));
        assert!(cache.determines(&cs(&[0]), 3));
        let stats = cache.stats().clone();
        drop(cache);
        let snap = metrics.drain_snapshot();
        assert_eq!(snap.counter("pli.hits"), stats.hits);
        assert_eq!(snap.counter("pli.misses"), stats.misses);
        assert_eq!(snap.counter("pli.intersects"), stats.intersects);
        assert_eq!(snap.counter("pli.refinement_checks"), stats.refinement_checks);
        // Every get() resolves to exactly one hit or miss.
        assert_eq!(
            snap.counter("pli.requests"),
            snap.counter("pli.hits") + snap.counter("pli.misses")
        );
        assert!(snap.counter("pli.requests") > 0);
    }

    #[test]
    fn get_many_matches_sequential_gets() {
        let t = table();
        let sets = [cs(&[0, 1]), cs(&[2]), cs(&[0, 2]), cs(&[0, 1]), cs(&[1, 2]), cs(&[0, 1, 2])];
        let mut batched = PliCache::new(&t);
        let batch_plis = batched.get_many(&sets[..5]);
        let mut sequential = PliCache::new(&t);
        let seq_plis: Vec<_> = sets[..5].iter().map(|s| sequential.get(s)).collect();
        for (b, s) in batch_plis.iter().zip(&seq_plis) {
            assert_eq!(**b, **s);
        }
        assert_eq!(batched.stats(), sequential.stats(), "batching must not change accounting");
        // A follow-up level reuses what the batch cached.
        let before = batched.stats().intersects;
        let _ = batched.get_many(&sets[5..]);
        assert_eq!(batched.stats().intersects, before + 1, "{{0,1,2}} = cached {{0,1}} ∩ {{2}}");
    }

    #[test]
    fn get_many_counts_duplicates_as_hits() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let plis = cache.get_many(&[cs(&[0, 1]), cs(&[0, 1]), cs(&[0, 1])]);
        assert_eq!(cache.stats().misses, 1);
        // Two duplicate hits, plus the pinned-singleton hit for the {0}
        // prefix the miss materialized — as a sequential caller would see.
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().intersects, 1);
        assert_eq!(*plis[0], *plis[1]);
        assert_eq!(*plis[1], *plis[2]);
    }

    #[test]
    fn refines_many_matches_determines() {
        let t = table();
        let checks = vec![
            (cs(&[0]), 3),
            (cs(&[3]), 0),
            (cs(&[0]), 1),
            (cs(&[0, 1]), 2),
            (cs(&[0]), 0), // trivial
            (cs(&[0]), 3), // repeated lhs: second get is a hit
        ];
        let mut batched = PliCache::new(&t);
        let verdicts = batched.refines_many(&checks);
        let mut sequential = PliCache::new(&t);
        let expected: Vec<bool> =
            checks.iter().map(|(lhs, rhs)| sequential.determines(lhs, *rhs)).collect();
        assert_eq!(verdicts, expected);
        assert_eq!(verdicts, vec![true, true, false, true, true, true]);
        assert_eq!(batched.stats(), sequential.stats(), "batching must not change accounting");
    }

    #[test]
    fn with_singles_matches_fresh_cache() {
        let t = table();
        let singles: Vec<Arc<Pli>> =
            t.columns().iter().map(|c| Arc::new(Pli::from_column(c))).collect();
        let mut seeded = PliCache::with_singles(&t, singles);
        let mut fresh = PliCache::new(&t);
        for sets in [vec![0], vec![0, 1], vec![1, 2, 3]] {
            let s = cs(&sets);
            assert_eq!(*seeded.get(&s), *fresh.get(&s));
        }
        assert!(seeded.determines(&cs(&[0]), 3));
    }

    #[test]
    #[should_panic(expected = "one singleton PLI per column")]
    fn with_singles_rejects_wrong_arity() {
        let t = table();
        let _ = PliCache::with_singles(&t, Vec::new());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let t = table();
        let mut cache = PliCache::with_capacity(&t, 2);
        let _ = cache.get(&cs(&[0, 1])); // tick 1
        let _ = cache.get(&cs(&[0, 2])); // tick 2
        let _ = cache.get(&cs(&[0, 1])); // refresh {0,1}, tick 3
        let _ = cache.get(&cs(&[1, 2])); // evicts {0,2}
        let before = cache.stats().misses;
        let _ = cache.get(&cs(&[0, 1])); // still cached → hit
        assert_eq!(cache.stats().misses, before);
    }

    #[test]
    fn byte_accounting_tracks_inserts_and_evictions() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let pinned = cache.estimated_bytes();
        assert!(pinned > 0, "pinned singletons have a footprint");
        let ab = cache.get(&cs(&[0, 1]));
        assert_eq!(cache.estimated_bytes(), pinned + ab.estimated_bytes());
        let ac = cache.get(&cs(&[0, 2]));
        assert_eq!(cache.estimated_bytes(), pinned + ab.estimated_bytes() + ac.estimated_bytes());
        // Re-requesting a cached set must not double-count.
        let _ = cache.get(&cs(&[0, 1]));
        assert_eq!(cache.estimated_bytes(), pinned + ab.estimated_bytes() + ac.estimated_bytes());
    }

    #[test]
    fn byte_budget_bounds_the_lru_region() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let pinned = cache.estimated_bytes();
        let one = cache.get(&cs(&[0, 1])).estimated_bytes();
        // Budget for roughly one multi-column entry: every further insert
        // must evict back down to the budget.
        cache.set_byte_budget(Some(one));
        for sets in [[0, 2], [1, 2], [0, 3], [1, 3]] {
            let _ = cache.get(&cs(&sets));
            assert!(cache.estimated_bytes() - pinned <= one);
            assert!(cache.cached_entries() <= 1);
        }
        assert!(cache.stats().evictions >= 4);
    }

    #[test]
    fn zero_byte_budget_still_serves_correct_plis() {
        let t = table();
        let mut cache = PliCache::new(&t);
        cache.set_byte_budget(Some(0));
        // Nothing multi-column can be retained, but results stay correct
        // (the returned Arc outlives its eviction).
        let ab = cache.get(&cs(&[0, 1]));
        assert!(ab.is_unique());
        assert_eq!(cache.cached_entries(), 0);
        assert!(cache.determines(&cs(&[0, 1]), 2));
    }

    #[test]
    fn lowering_the_budget_evicts_immediately() {
        let t = table();
        let mut cache = PliCache::new(&t);
        let _ = cache.get(&cs(&[0, 1]));
        let _ = cache.get(&cs(&[0, 2]));
        assert_eq!(cache.cached_entries(), 2);
        cache.set_byte_budget(Some(0));
        assert_eq!(cache.cached_entries(), 0);
        assert_eq!(cache.stats().evictions, 2);
        // Oldest-first: with a budget of one entry, {0,1} (older) goes first.
        let mut cache = PliCache::new(&t);
        let _ = cache.get(&cs(&[0, 1]));
        let two = cache.get(&cs(&[0, 2])).estimated_bytes();
        cache.set_byte_budget(Some(two));
        let before = cache.stats().misses;
        let _ = cache.get(&cs(&[0, 2])); // survivor → hit
        assert_eq!(cache.stats().misses, before);
        let _ = cache.get(&cs(&[0, 1])); // evicted → miss
        assert_eq!(cache.stats().misses, before + 1);
    }
}
