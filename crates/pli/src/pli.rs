//! Position list indexes (PLIs), also known as stripped partitions.
//!
//! A PLI for a column combination X lists, per distinct value of the
//! projection on X, the set of row ids sharing that value — keeping only
//! clusters of size ≥ 2 ("stripped", §2.2 of the paper). PLIs answer the
//! two questions every UCC/FD algorithm asks:
//!
//! * **uniqueness**: X is a UCC iff its stripped PLI is empty;
//! * **refinement** (Lemma 1): X → A iff every PLI cluster of X agrees on
//!   the value of A, equivalently `|X| = |X ∪ {A}|` in distinct counts.
//!
//! PLIs of larger combinations are built by pairwise intersection
//! (`π_{XY} = π_X ∩ π_Y`), the dominant runtime cost of all partition-based
//! profiling algorithms — which is why the holistic algorithms of the paper
//! share them across tasks via `PliCache`.

use muds_table::Column;

/// Row identifier within a table.
pub type RowId = u32;

/// A stripped partition: clusters of row ids with equal values, singletons
/// removed.
///
/// Clusters are kept in *canonical order*: row ids ascending within each
/// cluster, clusters ordered by their first (= smallest) row id. Since
/// clusters are disjoint, this order is unique, so two PLIs describing the
/// same partition compare equal under `PartialEq` no matter how they were
/// built — construction path, operand order of [`Pli::intersect`], hash-map
/// iteration history, or thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pli {
    clusters: Vec<Vec<RowId>>,
    num_rows: usize,
    /// Sum of cluster sizes (cached).
    size: usize,
}

impl Pli {
    /// Builds the PLI of a single dictionary-encoded column.
    pub fn from_column(column: &Column) -> Pli {
        Self::from_codes(column.codes(), column.code_domain())
    }

    /// Builds a PLI by bucketing `codes`; `code_domain` bounds the code
    /// values (codes must be `< code_domain`).
    pub fn from_codes(codes: &[u32], code_domain: usize) -> Pli {
        let mut buckets: Vec<Vec<RowId>> = vec![Vec::new(); code_domain];
        for (row, &code) in codes.iter().enumerate() {
            buckets[code as usize].push(row as RowId);
        }
        // Buckets fill in row order (rows ascending within each cluster),
        // but bucket order is code order; sort by first row to canonicalize.
        let mut clusters: Vec<Vec<RowId>> = buckets.into_iter().filter(|b| b.len() >= 2).collect();
        // lint:allow(panic): clusters were just filtered to len() >= 2.
        clusters.sort_unstable_by_key(|c| c[0]);
        let size = clusters.iter().map(|c| c.len()).sum();
        Pli { clusters, num_rows: codes.len(), size }
    }

    /// The PLI of the empty column combination: every row agrees with every
    /// other, so all rows form one cluster (stripped away when the table has
    /// fewer than two rows). Needed for `∅ → A` checks on constant columns.
    pub fn empty_set(num_rows: usize) -> Pli {
        if num_rows < 2 {
            return Pli { clusters: Vec::new(), num_rows, size: 0 };
        }
        let all: Vec<RowId> = (0..num_rows as RowId).collect();
        Pli { clusters: vec![all], num_rows, size: num_rows }
    }

    /// Constructs a PLI from explicit clusters (test/support use). Clusters
    /// of size < 2 are stripped, and the input is normalized to canonical
    /// order; rows must be unique and `< num_rows`.
    pub fn from_clusters(clusters: Vec<Vec<RowId>>, num_rows: usize) -> Pli {
        let mut clusters: Vec<Vec<RowId>> = clusters.into_iter().filter(|c| c.len() >= 2).collect();
        debug_assert!(clusters.iter().flatten().all(|&r| (r as usize) < num_rows));
        for cluster in &mut clusters {
            cluster.sort_unstable();
        }
        // lint:allow(panic): from_clusters rejects clusters shorter than 2
        // entries via the debug_assert contract above; stripped clusters
        // are never empty.
        clusters.sort_unstable_by_key(|c| c[0]);
        let size = clusters.iter().map(|c| c.len()).sum();
        Pli { clusters, num_rows, size }
    }

    /// The stripped clusters.
    pub fn clusters(&self) -> &[Vec<RowId>] {
        &self.clusters
    }

    /// Number of rows of the underlying table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Sum of cluster sizes (rows appearing in some duplicate group).
    pub fn size(&self) -> usize {
        self.size
    }

    /// True iff the column combination has no duplicate projections — i.e.
    /// it is a unique column combination.
    pub fn is_unique(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Number of distinct values of the projection:
    /// `num_rows - size + cluster_count`.
    pub fn distinct_count(&self) -> usize {
        self.num_rows - self.size + self.clusters.len()
    }

    /// The probe vector: `probe[row] = cluster index + 1`, or 0 for rows not
    /// in any cluster. Used for intersection and refinement checks.
    pub fn probe_vector(&self) -> Vec<u32> {
        let mut probe = vec![0u32; self.num_rows];
        for (i, cluster) in self.clusters.iter().enumerate() {
            for &row in cluster {
                probe[row as usize] = (i + 1) as u32;
            }
        }
        probe
    }

    /// Intersects two stripped partitions: the PLI of the union of the two
    /// column combinations. Linear in `self.size() + other.size()`.
    pub fn intersect(&self, other: &Pli) -> Pli {
        assert_eq!(self.num_rows, other.num_rows, "PLIs over different tables");
        // Iterate the smaller partition and probe the larger.
        let (small, large) = if self.size <= other.size { (self, other) } else { (other, self) };
        let probe = large.probe_vector();
        let mut clusters: Vec<Vec<RowId>> = Vec::new();
        let mut groups: std::collections::HashMap<u32, Vec<RowId>> =
            std::collections::HashMap::new();
        for cluster in &small.clusters {
            groups.clear();
            for &row in cluster {
                let p = probe[row as usize];
                if p != 0 {
                    groups.entry(p).or_default().push(row);
                }
            }
            // lint:allow(hash-order): drain order only permutes the
            // intermediate clusters vec, which is canonicalized by the
            // sort-by-first-row below before the Pli is built; covered by
            // the tests/determinism.rs matrix.
            for (_, rows) in groups.drain() {
                if rows.len() >= 2 {
                    clusters.push(rows);
                }
            }
        }
        // `groups.drain()` yields in arbitrary (hash) order; restore the
        // canonical order. Rows within each group were pushed in small-
        // cluster order, which is ascending by the canonical-order
        // invariant, so sorting by first row id fully canonicalizes —
        // making the result independent of operand order (which operand
        // played "small") and of hash-map history.
        // lint:allow(panic): intersection emits only clusters with >= 2
        // rows, so every cluster has a first element.
        clusters.sort_unstable_by_key(|c| c[0]);
        let size = clusters.iter().map(|c| c.len()).sum();
        Pli { clusters, num_rows: self.num_rows, size }
    }

    /// Incrementally extends this PLI across an append: `self` is the PLI
    /// of the first `num_rows` entries of `codes`, the result is the PLI of
    /// all of `codes`. Code *labels* may have been remapped by a dictionary
    /// merge — cluster membership is row-id based, so remapping is free —
    /// but the prefix rows' partition must be unchanged, which is exactly
    /// what `Table::apply_delta` guarantees for an append.
    ///
    /// Cost: O(appended + clusters), plus one O(rows) scan for singleton
    /// partners only when an appended value collides with a previously
    /// unique row — cheaper than re-bucketing the column whenever appends
    /// are small relative to the table.
    pub fn apply_append(&self, codes: &[u32]) -> Pli {
        let old_n = self.num_rows;
        debug_assert!(codes.len() >= old_n, "append cannot shrink the table");
        let mut clusters = self.clusters.clone();
        // lint:allow(hash-order): cluster/pending maps only route appended
        // rows to their cluster; the result is canonicalized by the
        // sort-by-first-row below.
        // lint:allow(panic): stripped clusters always hold at least two rows.
        let mut by_code: std::collections::HashMap<u32, usize> =
            clusters.iter().enumerate().map(|(i, c)| (codes[c[0] as usize], i)).collect();
        let mut pending: std::collections::HashMap<u32, Vec<RowId>> =
            std::collections::HashMap::new();
        for (row, &code) in codes.iter().enumerate().skip(old_n) {
            match by_code.get(&code) {
                // Appended ids exceed all old ids and arrive ascending, so
                // pushing keeps clusters in canonical ascending order.
                Some(&i) => clusters[i].push(row as RowId),
                None => pending.entry(code).or_default().push(row as RowId),
            }
        }
        if !pending.is_empty() {
            // Some appended value matched no existing cluster: it either
            // pairs up with a previously unique old row or forms a cluster
            // of appended rows only. One pass recovers the old singletons.
            let probe = self.probe_vector();
            let mut partner: std::collections::HashMap<u32, RowId> =
                std::collections::HashMap::new();
            for (row, &code) in codes.iter().enumerate().take(old_n) {
                if probe[row] == 0 && pending.contains_key(&code) {
                    partner.insert(code, row as RowId);
                }
            }
            // lint:allow(hash-order): drain order only picks provisional
            // cluster indexes; the sort-by-first-row below canonicalizes.
            for (code, mut rows) in pending.drain() {
                if let Some(&first) = partner.get(&code) {
                    rows.insert(0, first);
                }
                if rows.len() >= 2 {
                    let i = clusters.len();
                    clusters.push(rows);
                    by_code.insert(code, i);
                }
            }
        }
        // lint:allow(panic): every cluster holds at least two rows.
        clusters.sort_unstable_by_key(|c| c[0]);
        let size = clusters.iter().map(|c| c.len()).sum();
        Pli { clusters, num_rows: codes.len(), size }
    }

    /// Incrementally shrinks this PLI across a deletion: `deleted` holds
    /// the removed row ids (ascending, unique, pre-delete numbering).
    /// Deletion only ever shrinks clusters — it can never merge rows that
    /// disagreed — so the update touches nothing but the stripped clusters:
    /// O(size + clusters·log(deleted)), independent of the table length.
    pub fn apply_delete(&self, deleted: &[u32]) -> Pli {
        // lint:allow(panic): windows(2) always yields two-element slices.
        debug_assert!(deleted.windows(2).all(|w| w[0] < w[1]), "deleted ids sorted + unique");
        debug_assert!(deleted.iter().all(|&r| (r as usize) < self.num_rows));
        let num_rows = self.num_rows - deleted.len();
        let mut clusters: Vec<Vec<RowId>> = self
            .clusters
            .iter()
            .map(|cluster| {
                cluster
                    .iter()
                    .filter(|&&r| deleted.binary_search(&r).is_err())
                    .map(|&r| r - deleted.partition_point(|&d| d < r) as RowId)
                    .collect::<Vec<RowId>>()
            })
            .filter(|c| c.len() >= 2)
            .collect();
        // Dropping a cluster's first row can reorder first ids; restore
        // the canonical order.
        // lint:allow(panic): clusters shorter than two rows were stripped.
        clusters.sort_unstable_by_key(|c| c[0]);
        let size = clusters.iter().map(|c| c.len()).sum();
        Pli { clusters, num_rows, size }
    }

    /// Partition-refinement FD check (Lemma 1): true iff the column with
    /// per-row `codes` is constant within every cluster — i.e. the
    /// combination this PLI represents functionally determines that column.
    ///
    /// Approximate heap footprint of this PLI in bytes: row-id payload
    /// plus per-cluster `Vec` headers. Used by `PliCache`'s byte budget —
    /// an accounting estimate (allocator slack ignored), not an exact
    /// measurement.
    pub fn estimated_bytes(&self) -> usize {
        self.size * std::mem::size_of::<RowId>()
            + self.clusters.len() * std::mem::size_of::<Vec<RowId>>()
            + std::mem::size_of::<Pli>()
    }

    /// Strictly cheaper than building the intersected PLI: it short-circuits
    /// on the first violating cluster.
    pub fn refines(&self, codes: &[u32]) -> bool {
        debug_assert_eq!(codes.len(), self.num_rows);
        for cluster in &self.clusters {
            // lint:allow(panic): PLI clusters always hold >= 2 rows.
            let first = codes[cluster[0] as usize];
            if cluster[1..].iter().any(|&r| codes[r as usize] != first) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muds_table::Column;

    fn col(values: &[&str]) -> Column {
        Column::from_values("c", values)
    }

    #[test]
    fn from_column_strips_singletons() {
        let p = Pli::from_column(&col(&["a", "b", "a", "c", "b"]));
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.size(), 4);
        assert_eq!(p.num_rows(), 5);
        assert_eq!(p.distinct_count(), 3);
        assert!(!p.is_unique());
        // Canonical order: no re-sorting needed to compare.
        assert_eq!(p.clusters(), &[vec![0, 2], vec![1, 4]]);
    }

    #[test]
    fn unique_column_has_empty_pli() {
        let p = Pli::from_column(&col(&["a", "b", "c"]));
        assert!(p.is_unique());
        assert_eq!(p.distinct_count(), 3);
        assert_eq!(p.size(), 0);
    }

    #[test]
    fn nulls_form_a_cluster() {
        let p = Pli::from_column(&col(&["", "", "x"]));
        assert_eq!(p.cluster_count(), 1);
        assert_eq!(p.clusters()[0], vec![0, 1]);
    }

    #[test]
    fn empty_set_pli() {
        let p = Pli::empty_set(4);
        assert_eq!(p.cluster_count(), 1);
        assert_eq!(p.distinct_count(), 1);
        let p1 = Pli::empty_set(1);
        assert!(p1.is_unique());
        assert_eq!(p1.distinct_count(), 1); // 1 - 0 + 0
        let p0 = Pli::empty_set(0);
        assert_eq!(p0.distinct_count(), 0);
    }

    #[test]
    fn intersect_matches_combined_column() {
        // Column X: a a b b ; Column Y: p q p p
        // Combined XY: (a,p) (a,q) (b,p) (b,p) → one cluster {2,3}.
        let x = Pli::from_column(&col(&["a", "a", "b", "b"]));
        let y = Pli::from_column(&col(&["p", "q", "p", "p"]));
        let xy = x.intersect(&y);
        assert_eq!(xy.cluster_count(), 1);
        assert_eq!(xy.clusters()[0], vec![2, 3]);
        assert_eq!(xy.distinct_count(), 3);
    }

    #[test]
    fn intersect_is_commutative() {
        // Canonical cluster order makes intersection results directly
        // comparable: no per-cluster or per-list re-sorting. (The two
        // operand orders exercise both "small"/"large" role assignments.)
        let x = Pli::from_column(&col(&["a", "a", "b", "b", "a", "c"]));
        let y = Pli::from_column(&col(&["p", "q", "p", "p", "p", "q"]));
        assert_eq!(x.intersect(&y), y.intersect(&x));
    }

    #[test]
    fn clusters_are_in_canonical_order() {
        // Dictionary order differs from first-row order: "z" rows come
        // first positionally but sort last by code.
        let p = Pli::from_column(&col(&["z", "a", "z", "a"]));
        assert_eq!(p.clusters(), &[vec![0, 2], vec![1, 3]]);
        // Intersections preserve the canonical order too.
        let q = Pli::from_column(&col(&["k", "k", "k", "k"]));
        assert_eq!(p.intersect(&q).clusters(), &[vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn intersect_is_deterministic_across_repetitions() {
        // Many clusters per operand so a hash-order regression would have
        // plenty of chances to show: every repetition must match exactly.
        let xs: Vec<String> = (0..200).map(|i| format!("x{}", i % 20)).collect();
        let ys: Vec<String> = (0..200).map(|i| format!("y{}", i % 31)).collect();
        let x = Pli::from_column(&Column::from_values(
            "x",
            &xs.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        let y = Pli::from_column(&Column::from_values(
            "y",
            &ys.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        let first = x.intersect(&y);
        for _ in 0..10 {
            assert_eq!(x.intersect(&y), first);
            assert_eq!(y.intersect(&x), first);
        }
    }

    #[test]
    fn from_clusters_normalizes_to_canonical_order() {
        let p = Pli::from_clusters(vec![vec![5, 3], vec![2, 0, 4]], 6);
        assert_eq!(p.clusters(), &[vec![0, 2, 4], vec![3, 5]]);
    }

    #[test]
    fn intersect_with_empty_set_pli_is_identity() {
        let x = Pli::from_column(&col(&["a", "a", "b", "b"]));
        let e = Pli::empty_set(4);
        let r = x.intersect(&e);
        assert_eq!(r.distinct_count(), x.distinct_count());
        assert_eq!(r.cluster_count(), x.cluster_count());
    }

    #[test]
    fn intersect_with_unique_is_unique() {
        let x = Pli::from_column(&col(&["a", "a", "b"]));
        let u = Pli::from_column(&col(&["1", "2", "3"]));
        assert!(x.intersect(&u).is_unique());
    }

    #[test]
    #[should_panic(expected = "different tables")]
    fn intersect_rejects_mismatched_row_counts() {
        let a = Pli::empty_set(3);
        let b = Pli::empty_set(4);
        let _ = a.intersect(&b);
    }

    #[test]
    fn refines_detects_fd() {
        // X: a a b b determines Y: p p q q but not Z: p q p q.
        let x = Pli::from_column(&col(&["a", "a", "b", "b"]));
        let y = col(&["p", "p", "q", "q"]);
        let z = col(&["p", "q", "p", "q"]);
        assert!(x.refines(y.codes()));
        assert!(!x.refines(z.codes()));
    }

    #[test]
    fn refines_agrees_with_cardinality_criterion() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let n = rng.gen_range(1..30);
            let xs: Vec<String> = (0..n).map(|_| rng.gen_range(0..4).to_string()).collect();
            let ys: Vec<String> = (0..n).map(|_| rng.gen_range(0..3).to_string()).collect();
            let xcol = Column::from_values("x", &xs.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            let ycol = Column::from_values("y", &ys.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            let px = Pli::from_column(&xcol);
            let py = Pli::from_column(&ycol);
            let lemma1 = px.distinct_count() == px.intersect(&py).distinct_count();
            assert_eq!(px.refines(ycol.codes()), lemma1);
        }
    }

    #[test]
    fn empty_set_pli_refines_only_constants() {
        let e = Pli::empty_set(3);
        assert!(e.refines(col(&["k", "k", "k"]).codes()));
        assert!(!e.refines(col(&["k", "k", "j"]).codes()));
    }

    #[test]
    fn probe_vector_marks_cluster_membership() {
        let p = Pli::from_column(&col(&["a", "b", "a", "c"]));
        let probe = p.probe_vector();
        assert_eq!(probe[0], probe[2]);
        assert_ne!(probe[0], 0);
        assert_eq!(probe[1], 0);
        assert_eq!(probe[3], 0);
    }

    #[test]
    fn apply_append_joins_existing_clusters() {
        let old = col(&["a", "b", "a"]);
        let new = col(&["a", "b", "a", "a", "c"]);
        let p = Pli::from_column(&old).apply_append(new.codes());
        assert_eq!(p, Pli::from_column(&new));
        assert_eq!(p.clusters(), &[vec![0, 2, 3]]);
    }

    #[test]
    fn apply_append_pairs_with_old_singleton() {
        let old = col(&["a", "b", "c"]);
        let new = col(&["a", "b", "c", "b"]);
        let p = Pli::from_column(&old).apply_append(new.codes());
        assert_eq!(p, Pli::from_column(&new));
        assert_eq!(p.clusters(), &[vec![1, 3]]);
    }

    #[test]
    fn apply_append_clusters_of_new_rows_only() {
        let old = col(&["a"]);
        let new = col(&["a", "z", "z"]);
        let p = Pli::from_column(&old).apply_append(new.codes());
        assert_eq!(p, Pli::from_column(&new));
        assert_eq!(p.clusters(), &[vec![1, 2]]);
    }

    #[test]
    fn apply_append_handles_remapped_codes() {
        // Appending "a" to ["b", "c", "b"] shifts every old code up by
        // one; the cluster {0,2} must survive the remap untouched.
        let old = col(&["b", "c", "b"]);
        let new = col(&["b", "c", "b", "a"]);
        let p = Pli::from_column(&old).apply_append(new.codes());
        assert_eq!(p, Pli::from_column(&new));
    }

    #[test]
    fn apply_delete_shrinks_and_restrips() {
        let old = col(&["a", "a", "b", "b", "a"]);
        // Delete rows 1 and 3: {0,1,4} loses 1 → {0,4}→remap {0,2};
        // {2,3} loses 3 → singleton, stripped.
        let p = Pli::from_column(&old).apply_delete(&[1, 3]);
        let survivor = col(&["a", "b", "a"]);
        assert_eq!(p, Pli::from_column(&survivor));
        assert_eq!(p.clusters(), &[vec![0, 2]]);
    }

    #[test]
    fn apply_delete_restores_canonical_order() {
        // Deleting row 0 makes the second cluster's first id smallest.
        let old = col(&["x", "y", "x", "y", "x"]);
        let p = Pli::from_column(&old).apply_delete(&[0]);
        assert_eq!(p, Pli::from_column(&col(&["y", "x", "y", "x"])));
    }

    #[test]
    fn apply_delete_everything() {
        let old = col(&["a", "a"]);
        let p = Pli::from_column(&old).apply_delete(&[0, 1]);
        assert_eq!(p.num_rows(), 0);
        assert!(p.is_unique());
    }

    #[test]
    fn random_deltas_match_from_codes() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let n = rng.gen_range(0..30);
            let extra = rng.gen_range(0..8);
            let all: Vec<String> =
                (0..n + extra).map(|_| rng.gen_range(0..6).to_string()).collect();
            let old_col =
                Column::from_values("c", &all[..n].iter().map(|s| s.as_str()).collect::<Vec<_>>());
            let new_col =
                Column::from_values("c", &all.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            // The prefix partition is unchanged by appends, but the code
            // labels differ between old_col and new_col — exactly the
            // remap situation apply_append must tolerate.
            let appended = Pli::from_column(&old_col).apply_append(new_col.codes());
            assert_eq!(appended, Pli::from_column(&new_col));
            if n > 0 {
                let mut dels: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.3)).collect();
                dels.dedup();
                let keep: Vec<&str> = (0..n)
                    .filter(|&r| dels.binary_search(&(r as u32)).is_err())
                    .map(|r| all[r].as_str())
                    .collect();
                let deleted = Pli::from_column(&old_col).apply_delete(&dels);
                assert_eq!(deleted, Pli::from_column(&Column::from_values("c", &keep)));
            }
        }
    }

    #[test]
    fn from_clusters_strips_small() {
        let p = Pli::from_clusters(vec![vec![0, 1], vec![2], vec![]], 3);
        assert_eq!(p.cluster_count(), 1);
    }
}
