//! Agree sets — the row-based view of dependency discovery.
//!
//! The *agree set* of two rows is the set of columns on which they carry
//! equal values. Agree sets are the bridge between row-based and
//! column-based profiling (§7 of the paper contrasts the two): maximal
//! non-UCCs are exactly the maximal agree sets, and the minimal left-hand
//! sides of FDs are the minimal hitting sets of the complements of the
//! agree sets that disagree on the right-hand side (Dep-Miner / FastFDs).
//!
//! Candidate row pairs are generated from the stripped single-column PLIs
//! — two rows with an empty agree set never share a cluster anywhere, so
//! only co-clustered pairs need comparing (the same observation Gordian's
//! prefix tree exploits).

use std::collections::HashSet;

use muds_lattice::ColumnSet;
use muds_table::Table;

use crate::pli::Pli;

/// Computes all distinct non-empty agree sets of `table`.
///
/// Quadratic in the largest cluster size; intended for the row-based
/// baseline algorithms and cross-validation, not for very large inputs.
pub fn agree_sets(table: &Table) -> Vec<ColumnSet> {
    let n = table.num_columns();
    let codes: Vec<&[u32]> = table.columns().iter().map(|c| c.codes()).collect();

    // Candidate pairs: rows sharing a cluster in some single-column PLI.
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    for col in table.columns() {
        let pli = Pli::from_column(col);
        for cluster in pli.clusters() {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    pairs.insert((a.min(b), a.max(b)));
                }
            }
        }
    }

    let mut sets: HashSet<ColumnSet> = HashSet::new();
    // lint:allow(hash-order): each pair contributes one agree set to a
    // set union — a commutative accumulation — and the result vec is
    // sorted before returning; covered by the tests/determinism.rs matrix.
    for (a, b) in pairs {
        let mut agree = ColumnSet::empty();
        for (c, col_codes) in codes.iter().enumerate().take(n) {
            if col_codes[a as usize] == col_codes[b as usize] {
                agree.insert(c);
            }
        }
        if !agree.is_empty() {
            sets.insert(agree);
        }
    }
    let mut out: Vec<ColumnSet> = sets.into_iter().collect();
    out.sort();
    out
}

/// Keeps only the maximal sets of `sets` (no stored superset).
pub fn maximal_sets(sets: &[ColumnSet]) -> Vec<ColumnSet> {
    // lint:allow(hash-order): `sets` is this function's &[ColumnSet]
    // parameter (the lint matches the HashSet of the same name above);
    // the output is sorted below regardless.
    let mut maximal: Vec<ColumnSet> =
        sets.iter().copied().filter(|s| !sets.iter().any(|o| s.is_proper_subset_of(o))).collect();
    maximal.sort();
    maximal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        ColumnSet::from_indices(cols.iter().copied())
    }

    #[test]
    fn simple_agree_sets() {
        // rows: (1,x), (1,y), (2,y)
        // pairs: (0,1) agree on {a}; (1,2) agree on {b}; (0,2) agree on ∅.
        let t =
            Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["1", "y"], vec!["2", "y"]])
                .unwrap();
        assert_eq!(agree_sets(&t), vec![cs(&[0]), cs(&[1])]);
    }

    #[test]
    fn all_distinct_rows_no_agreement() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["1", "x"], vec!["2", "y"]]).unwrap();
        assert!(agree_sets(&t).is_empty());
    }

    #[test]
    fn nulls_agree_with_each_other() {
        let t = Table::from_rows("t", &["a", "b"], &[vec!["", "x"], vec!["", "y"]]).unwrap();
        assert_eq!(agree_sets(&t), vec![cs(&[0])]);
    }

    #[test]
    fn maximal_filter() {
        let sets = vec![cs(&[0]), cs(&[0, 1]), cs(&[2])];
        assert_eq!(maximal_sets(&sets), vec![cs(&[0, 1]), cs(&[2])]);
    }

    #[test]
    fn cross_check_with_bruteforce_pairs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let cols = rng.gen_range(1..=5);
            let rows = rng.gen_range(2..=20);
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let data: Vec<Vec<String>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(0..3).to_string()).collect())
                .collect();
            let t = Table::from_rows("t", &name_refs, &data).unwrap().dedup_rows();
            // Brute force over all row pairs.
            let mut expect: HashSet<ColumnSet> = HashSet::new();
            for a in 0..t.num_rows() {
                for b in a + 1..t.num_rows() {
                    let mut agree = ColumnSet::empty();
                    for c in 0..cols {
                        if t.column(c).codes()[a] == t.column(c).codes()[b] {
                            agree.insert(c);
                        }
                    }
                    if !agree.is_empty() {
                        expect.insert(agree);
                    }
                }
            }
            let mut expect: Vec<ColumnSet> = expect.into_iter().collect();
            expect.sort();
            assert_eq!(agree_sets(&t), expect);
        }
    }
}
