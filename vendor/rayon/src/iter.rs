//! Order-preserving parallel iterators.
//!
//! A [`ParallelIterator`] here is a splittable, exactly-sized description
//! of work. The driver splits it into `min(threads, len)` contiguous
//! parts, runs each part sequentially on a scoped worker thread, and
//! concatenates the per-part outputs *in input order* — so every pipeline
//! yields exactly the sequence its sequential counterpart would.

use std::ops::Range;
use std::sync::Arc;

/// A splittable parallel iterator. `par_len` is the number of *input*
/// items (adapters like [`Filter`] may yield fewer).
pub trait ParallelIterator: Sized + Send {
    /// The type of item this iterator produces.
    type Item: Send;

    /// Number of input items remaining.
    fn par_len(&self) -> usize;

    /// Splits into the first `index` input items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drains this iterator sequentially into `f`, preserving input order.
    fn drive_seq<F: FnMut(Self::Item)>(self, f: F);

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Keeps items for which `f` returns true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, f: Arc::new(f) }
    }

    /// Maps and filters in one pass.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
    {
        FilterMap { base: self, f: Arc::new(f) }
    }

    /// Copies referenced items (the `iter::Iterator::copied` analogue).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Collects into `C`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Conversion into a [`ParallelIterator`] (by value).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;

    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` sugar: borrow `self` and iterate it in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (a reference).
    type Item: Send + 'a;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        drive(iter)
    }
}

/// Runs `iter` across up to `current_num_threads()` scoped workers and
/// returns the outputs concatenated in input order. Falls back to a purely
/// sequential drain for trivial sizes, a single configured thread, or when
/// already running inside a worker (depth-1 parallelism).
fn drive<P: ParallelIterator>(iter: P) -> Vec<P::Item> {
    let len = iter.par_len();
    let threads = crate::current_num_threads();
    if len <= 1 || threads <= 1 || crate::in_worker() {
        let mut out = Vec::with_capacity(len);
        iter.drive_seq(|item| out.push(item));
        return out;
    }
    let parts = threads.min(len);
    let mut pieces = Vec::with_capacity(parts);
    let mut rest = iter;
    let mut remaining = len;
    for i in 0..parts - 1 {
        let take = remaining.div_ceil(parts - i);
        let (head, tail) = rest.split_at(take);
        pieces.push(head);
        rest = tail;
        remaining -= take;
    }
    pieces.push(rest);
    let part_outputs: Vec<Vec<P::Item>> = std::thread::scope(|s| {
        let handles: Vec<_> = pieces
            .into_iter()
            .map(|piece| {
                s.spawn(move || {
                    crate::run_as_worker(move || {
                        let mut out = Vec::with_capacity(piece.par_len());
                        piece.drive_seq(|item| out.push(item));
                        out
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for part in part_outputs {
        out.extend(part);
    }
    out
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Send + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (Map { base: left, f: Arc::clone(&self.f) }, Map { base: right, f: self.f })
    }

    fn drive_seq<G: FnMut(R)>(self, mut g: G) {
        let f = self.f;
        self.base.drive_seq(|item| g(f(item)));
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Send + Sync,
{
    type Item = B::Item;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (Filter { base: left, f: Arc::clone(&self.f) }, Filter { base: right, f: self.f })
    }

    fn drive_seq<G: FnMut(B::Item)>(self, mut g: G) {
        let f = self.f;
        self.base.drive_seq(|item| {
            if f(&item) {
                g(item);
            }
        });
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Send + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (FilterMap { base: left, f: Arc::clone(&self.f) }, FilterMap { base: right, f: self.f })
    }

    fn drive_seq<G: FnMut(R)>(self, mut g: G) {
        let f = self.f;
        self.base.drive_seq(|item| {
            if let Some(mapped) = f(item) {
                g(mapped);
            }
        });
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<B> {
    base: B,
}

impl<'a, T, B> ParallelIterator for Copied<B>
where
    T: 'a + Copy + Send + Sync,
    B: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (Copied { base: left }, Copied { base: right })
    }

    fn drive_seq<G: FnMut(T)>(self, mut g: G) {
        self.base.drive_seq(|item| g(*item));
    }
}

// ---------------------------------------------------------------------------
// Base iterators.
// ---------------------------------------------------------------------------

/// By-value iterator over a `Vec<T>`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecIter { items: tail })
    }

    fn drive_seq<F: FnMut(T)>(self, mut f: F) {
        for item in self.items {
            f(item);
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// By-reference iterator over a slice.
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.items.split_at(index);
        (SliceIter { items: head }, SliceIter { items: tail })
    }

    fn drive_seq<F: FnMut(&'a T)>(self, mut f: F) {
        for item in self.items {
            f(item);
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { items: self.as_slice() }
    }
}

/// Iterator over a `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (RangeIter { range: self.range.start..mid }, RangeIter { range: mid..self.range.end })
    }

    fn drive_seq<F: FnMut(usize)>(self, mut f: F) {
        for i in self.range {
            f(i);
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}
