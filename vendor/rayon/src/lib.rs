//! Offline stand-in for the `rayon` crate (the build environment has no
//! crates.io access). It implements the small API subset the profiler
//! uses — `join`, a configurable global thread count, `par_iter`/
//! `into_par_iter` with `map`/`filter`/`filter_map`/`collect`, and
//! parallel slice sorting — on top of `std::thread::scope`.
//!
//! # Determinism contract
//!
//! Everything here is *deterministic by construction*: for any configured
//! thread count (including 1), every operation returns results in the same
//! order a sequential execution would produce.
//!
//! * Iterator pipelines split the input into contiguous parts and
//!   concatenate the per-part outputs in input order, so `map`/`filter`
//!   pipelines are order-preserving.
//! * `par_sort*` is implemented as a *stable* merge sort (stable chunk
//!   sorts + left-priority merges), so the output is the unique stable
//!   permutation of the input regardless of how it was chunked —
//!   `par_sort_unstable` is an alias and shares the guarantee.
//! * Nested parallel calls from inside a worker run sequentially (depth-1
//!   parallelism), which both bounds the thread count and keeps nesting
//!   from changing any ordering.
//!
//! # Divergence from real rayon
//!
//! `ThreadPoolBuilder::build_global` may be called repeatedly and simply
//! reconfigures the target thread count (real rayon errors on the second
//! call). The determinism test matrix relies on this to run the same
//! workload at `--threads 1/2/8` inside one process.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;
pub mod slice;

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
    pub use crate::slice::ParallelSliceMut;
}

/// Configured global thread count; 0 means "use available parallelism".
///
/// All accesses use `Ordering::Relaxed`: the count is a self-contained
/// scalar — no other memory is published through it, so no acquire/release
/// pairing is needed. A configuration racing with an in-flight `join`/
/// `scope` can only make that call read the old or the new count, both of
/// which are valid (the data handed to workers is synchronized separately
/// by `thread::scope`'s spawn/join edges).
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on threads spawned by this crate's drivers: parallel calls made
    /// from such threads run sequentially (depth-1 parallelism).
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn in_worker() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Runs `f` with the worker flag set (on a freshly spawned worker thread).
pub(crate) fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    IS_WORKER.with(|w| w.set(true));
    let r = f();
    IS_WORKER.with(|w| w.set(false));
    r
}

/// The number of threads parallel operations may use. Defaults to the
/// machine's available parallelism until configured via
/// [`ThreadPoolBuilder::build_global`].
pub fn current_num_threads() -> usize {
    match CONFIGURED_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Error type of [`ThreadPoolBuilder::build_global`]. This stand-in never
/// actually fails; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global thread configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count; 0 restores the "available parallelism"
    /// default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Applies the configuration globally. Unlike real rayon this may be
    /// called repeatedly; each call simply replaces the configured count
    /// (see the module docs — the determinism matrix depends on it).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
/// `a` runs on the calling thread; `b` runs on a scoped worker when more
/// than one thread is configured (and we are not already inside a worker).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || in_worker() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let handle = s.spawn(|| run_as_worker(b));
        let ra = a();
        let rb = handle.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_join_runs_sequentially_but_correctly() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn thread_count_matrix_is_deterministic() {
        let input: Vec<u64> = (0..10_000).map(|i| (i * 2_654_435_761_u64) % 997).collect();
        let expected_map: Vec<u64> = input.iter().map(|&x| x * 3 + 1).collect();
        let mut expected_sorted = input.clone();
        expected_sorted.sort();
        for threads in [1, 2, 3, 8] {
            ThreadPoolBuilder::new().num_threads(threads).build_global().unwrap();
            let mapped: Vec<u64> = input.par_iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(mapped, expected_map, "map order at {threads} threads");
            let odd: Vec<u64> = input.par_iter().filter(|&&x| x % 2 == 1).copied().collect();
            let odd_seq: Vec<u64> = input.iter().filter(|&&x| x % 2 == 1).copied().collect();
            assert_eq!(odd, odd_seq, "filter order at {threads} threads");
            let mut sorted = input.clone();
            sorted.par_sort_unstable();
            assert_eq!(sorted, expected_sorted, "sort at {threads} threads");
        }
        ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }

    #[test]
    fn par_sort_is_stable_for_any_thread_count() {
        // Sort by key only; payloads of equal keys must keep input order.
        let input: Vec<(u8, usize)> =
            (0..5_000).map(|i| ((i % 7) as u8, i)).rev().collect::<Vec<_>>();
        let mut expected = input.clone();
        expected.sort_by_key(|x| x.0);
        for threads in [1, 2, 5, 8] {
            ThreadPoolBuilder::new().num_threads(threads).build_global().unwrap();
            let mut v = input.clone();
            v.par_sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(v, expected, "stability at {threads} threads");
        }
        ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }

    #[test]
    fn filter_map_and_ranges() {
        let out: Vec<usize> =
            (0..100usize).into_par_iter().filter_map(|i| (i % 3 == 0).then_some(i * 10)).collect();
        let expected: Vec<usize> =
            (0..100usize).filter_map(|i| (i % 3 == 0).then_some(i * 10)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..500).map(|i| i.to_string()).collect();
        let expected = v.clone();
        let out: Vec<String> = v.into_par_iter().collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().copied().collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
        let mut small = vec![3u32, 1, 2];
        small.par_sort();
        assert_eq!(small, vec![1, 2, 3]);
    }
}
