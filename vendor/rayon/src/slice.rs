//! Parallel sorting.
//!
//! Implemented as a parallel *stable* merge sort: the input is split into
//! `min(threads, …)` contiguous chunks, each chunk is sorted with the
//! standard library's stable sort on its own worker, and the sorted chunks
//! are merged left to right with a left-priority merge. Stable chunk sorts
//! plus left-priority merges of adjacent runs yield the unique stable
//! permutation of the input, so the result is bit-identical to a
//! sequential `sort_by` for every thread count and chunking.
//!
//! `par_sort_unstable*` are aliases of the stable implementation: giving
//! up stability here would buy nothing but thread-count-dependent order
//! among equal elements, which is exactly what this crate exists to avoid.

use std::cmp::Ordering;

/// Inputs shorter than this sort sequentially; chunk setup would dominate.
const MIN_PARALLEL_SORT_LEN: usize = 1024;

/// Parallel sorting on vectors (this stand-in implements it for `Vec<T>`
/// only, which is the only shape the profiler sorts).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;

    /// Alias of [`ParallelSliceMut::par_sort`] (see module docs).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Parallel stable sort with a comparator.
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Alias of [`ParallelSliceMut::par_sort_by`] (see module docs).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self, &T::cmp);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self, &T::cmp);
    }

    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }
}

fn par_merge_sort<T, F>(v: &mut Vec<T>, cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let len = v.len();
    let threads = crate::current_num_threads();
    if threads <= 1 || crate::in_worker() || len < MIN_PARALLEL_SORT_LEN {
        v.sort_by(cmp);
        return;
    }
    let parts = threads.min(len);
    let mut chunks = Vec::with_capacity(parts);
    let mut rest = std::mem::take(v);
    let mut remaining = len;
    for i in 0..parts - 1 {
        let take = remaining.div_ceil(parts - i);
        let tail = rest.split_off(take);
        chunks.push(rest);
        rest = tail;
        remaining -= take;
    }
    chunks.push(rest);
    let sorted: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|mut chunk| {
                s.spawn(move || {
                    crate::run_as_worker(move || {
                        chunk.sort_by(cmp);
                        chunk
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });
    let mut merged = Vec::new();
    for chunk in sorted {
        merged = merge(merged, chunk, cmp);
    }
    *v = merged;
}

/// Left-priority stable merge of two sorted runs (`a` precedes `b` in the
/// original input, so ties take from `a`).
fn merge<T, F>(a: Vec<T>, b: Vec<T>, cmp: &F) -> Vec<T>
where
    F: Fn(&T, &T) -> Ordering,
{
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a_it = a.into_iter().peekable();
    let mut b_it = b.into_iter().peekable();
    loop {
        let take_left = match (a_it.peek(), b_it.peek()) {
            (Some(x), Some(y)) => cmp(x, y) != Ordering::Greater,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_left {
            out.push(a_it.next().expect("peeked"));
        } else {
            out.push(b_it.next().expect("peeked"));
        }
    }
    out
}
