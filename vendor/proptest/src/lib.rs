//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! integer-range and tuple strategies, `prop_map` / `prop_flat_map`,
//! `collection::vec`, the `proptest!` macro with `#![proptest_config]`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline reproduction:
//! * **No shrinking.** A failing case reports the case number and seed; the
//!   deterministic per-test RNG makes every failure reproducible as-is.
//! * **Deterministic seeds.** Each `proptest!` test derives its RNG seed
//!   from the test function's name, so runs are stable across invocations
//!   and machines (upstream uses an OS seed plus a regression file).

use rand::prelude::*;

/// RNG handed to strategies. Deterministic per test.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// FNV-1a hash of a test name, used as the per-test seed.
    pub fn seed_from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not meet preconditions.
    Reject,
}

/// Result type of the generated per-case closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Upstream's `Strategy` also carries shrinking
/// machinery; here it is a plain deterministic generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed value as a strategy (upstream: `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::prelude::*;

    /// Element count for [`vec`]: a fixed size or an inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `element` values with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases to run per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `body` against `cases` generated inputs. Called by the `proptest!`
/// macro expansion; not part of the public upstream API.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng::seed_from_name(test_name);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {} // precondition not met: skip
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {case}/{} of {test_name} failed: {msg}", config.cases)
            }
        }
    }
}

/// Defines property tests. Supports the upstream surface this workspace
/// uses: an optional `#![proptest_config(..)]` header and `#[test]` fns with
/// a single `pattern in strategy` binding.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = $strat;
            $crate::run_cases(stringify!($name), &config, &strategy, |$pat| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let s = (1usize..=6, 0u32..10).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::seed_from_name("x");
        let mut r2 = crate::TestRng::seed_from_name("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let s = collection::vec(0u32..5, 2usize..=4);
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_checks(x in 0u32..100) {
            prop_assume!(x != 7);
            prop_assert!(x < 100, "x was {x}");
            prop_assert_eq!(x, x);
        }
    }
}
