//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the benchmark-harness subset the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the `criterion_group!` /
//! `criterion_main!` macros. No statistics, plots, or outlier analysis —
//! each benchmark runs `sample_size` timed iterations after one warm-up and
//! reports the mean, which is enough to eyeball perf trends offline.

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`]. Ignored here beyond API
/// compatibility: every iteration gets a fresh setup value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration, recorded by `iter*`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        let t0 = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = t0.elapsed() / self.samples as u32;
    }

    /// Times `routine` with a per-iteration `setup` value; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed();
        }
        self.mean = total / self.samples as u32;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, mean: Duration::ZERO };
        f(&mut b);
        self.criterion.report(&format!("{}/{}", self.name, id), b.mean, self.sample_size);
        self
    }

    /// Ends the group (upstream flushes reports here; here a no-op).
    pub fn finish(self) {}
}

/// Benchmark driver. Collects results and prints one line per benchmark.
pub struct Criterion {
    default_sample_size: usize,
    /// `(id, mean)` of every benchmark run, in execution order.
    results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, results: Vec::new() }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.default_sample_size, mean: Duration::ZERO };
        f(&mut b);
        self.report(id, b.mean, self.default_sample_size);
        self
    }

    fn report(&mut self, id: &str, mean: Duration, samples: usize) {
        println!("{id:<60} {mean:>12.2?}/iter  ({samples} samples)");
        self.results.push((id.to_string(), mean));
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }
}

/// Re-export so user code can `use criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].0, "g/count");
    }
}
