//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! provides the (small) API surface the workspace actually uses: a seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] over integer ranges, and
//! [`prelude::SliceRandom::shuffle`]. Everything is fully deterministic
//! given the seed, which is all the profiling algorithms require — no test
//! in this workspace depends on the exact stream of the upstream `StdRng`.
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"): a 64-bit state advanced by a Weyl constant and
//! finalized with a variant of the MurmurHash3 mixer. It passes BigCrush on
//! its own and is more than enough to drive lattice random walks and
//! synthetic data generation.

/// Core trait of random generators: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift reduction (Lemire); bias is < 2^-64 per
                // draw, irrelevant for lattice walks and data generation.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        if low == 0 && high == u64::MAX {
            return rng.next_u64();
        }
        u64::sample_half_open(rng, low, high + 1)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // Widening to i128 below makes `high + 1` safe for every
                // type here (u64 has its own impl above).
                let (low, high) = (*self.start() as i128, *self.end() as i128);
                debug_assert!(low <= high, "gen_range called with an empty range");
                let span = (high - low + 1) as u128;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (low + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

/// Convenience methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, like upstream's f64 sampling.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64). Stand-in for
    /// `rand::rngs::StdRng`: same contract (fully reproducible from the
    /// seed), different stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so consecutive small seeds do not produce
            // correlated first draws.
            let mut rng = StdRng { state: seed ^ 0x5851_F42D_4C95_7F2D };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_half_open(rng, 0, i + 1);
            self.swap(i, j);
        }
    }
}

pub mod seq {
    pub use super::SliceRandom;
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: u64 = rng.gen_range(0..=2);
            assert!(u <= 2);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reached: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
