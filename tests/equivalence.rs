//! Cross-algorithm equivalence on the generated experiment datasets: every
//! pipeline (sequential baseline, Holistic FUN, MUDS, TANE) must produce
//! identical metadata. This is the end-to-end guarantee behind every
//! benchmark comparison — the algorithms race only if they agree.

use muds_core::{apply_incremental, profile, Algorithm, ProfilerConfig};
use muds_datagen::{ionosphere_like, ncvoter_like, uci_dataset, uniprot_like};
use muds_table::{Table, TableDelta};

fn assert_all_agree(table: &Table) {
    let cfg = ProfilerConfig::default();
    let results: Vec<_> = Algorithm::ALL.iter().map(|&a| profile(table, a, &cfg)).collect();
    for pair in results.windows(2) {
        assert_eq!(
            pair[0].fds.to_sorted_vec(),
            pair[1].fds.to_sorted_vec(),
            "{} vs {} disagree on FDs for {}",
            pair[0].algorithm.name(),
            pair[1].algorithm.name(),
            table.name()
        );
        assert_eq!(
            pair[0].minimal_uccs,
            pair[1].minimal_uccs,
            "{} vs {} disagree on UCCs for {}",
            pair[0].algorithm.name(),
            pair[1].algorithm.name(),
            table.name()
        );
    }
    // IND-producing pipelines agree among themselves.
    assert_eq!(results[0].inds, results[1].inds, "{}", table.name());
    assert_eq!(results[1].inds, results[2].inds, "{}", table.name());
}

#[test]
fn all_algorithms_agree_on_uniprot_like() {
    assert_all_agree(&uniprot_like(800, 8));
}

#[test]
fn all_algorithms_agree_on_ionosphere_like() {
    assert_all_agree(&ionosphere_like(11));
}

#[test]
fn all_algorithms_agree_on_ncvoter_like() {
    assert_all_agree(&ncvoter_like(600, 10));
}

#[test]
fn all_algorithms_agree_on_small_uci_datasets() {
    for name in ["iris", "balance", "b-cancer", "bridges", "echocard"] {
        assert_all_agree(&uci_dataset(name));
    }
}

#[test]
fn all_algorithms_agree_on_downsampled_wide_uci_datasets() {
    // The big Table 3 datasets, cut down so the test stays fast while the
    // dependency structure survives.
    assert_all_agree(&uci_dataset("abalone").take_rows(800));
    assert_all_agree(&uci_dataset("adult").take_rows(600).take_columns(10));
    assert_all_agree(&uci_dataset("letter").take_rows(500).take_columns(10));
    assert_all_agree(&uci_dataset("hepatitis").take_columns(12).dedup_rows());
}

#[test]
fn ground_truth_check_on_narrow_tables() {
    // Against the exponential oracles, where feasible.
    for table in [uniprot_like(300, 7), ncvoter_like(250, 8), ionosphere_like(9)] {
        let result = profile(&table, Algorithm::Muds, &ProfilerConfig::default());
        assert_eq!(
            result.fds.to_sorted_vec(),
            muds_fd::naive_minimal_fds(&table).to_sorted_vec(),
            "MUDS vs naive FDs on {}",
            table.name()
        );
        assert_eq!(
            result.minimal_uccs,
            muds_ucc::naive_minimal_uccs(&table),
            "MUDS vs naive UCCs on {}",
            table.name()
        );
        assert_eq!(
            result.inds,
            muds_ind::naive_inds(&table),
            "MUDS vs naive INDs on {}",
            table.name()
        );
    }
}

/// Every shrunken repro the fuzzer has ever banked must stay fixed: all
/// four pipelines agree, and on narrow repros the exponential naive
/// oracles confirm the agreed answer is the *right* one. New corpus files
/// are picked up automatically — `mudsprof fuzz --corpus tests/corpus`
/// writes them in exactly this format.
#[test]
fn corpus_repros_stay_fixed() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        // No corpus yet: nothing banked, nothing to replay.
        return;
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let table = muds_table::table_from_csv_file(&path, &muds_table::CsvOptions::default())
            .unwrap_or_else(|e| panic!("corpus file {name} is unreadable: {e}"));
        // Repros are replayed exactly as banked — including duplicate rows
        // or NULL floods — because the original disagreement may need them.
        assert_all_agree(&table);
        if table.num_columns() <= 8 && table.num_rows() <= 64 {
            let result = profile(&table, Algorithm::Muds, &ProfilerConfig::default());
            assert_eq!(
                result.fds.to_sorted_vec(),
                muds_fd::naive_minimal_fds(&table).to_sorted_vec(),
                "MUDS vs naive FDs on corpus repro {name}"
            );
            assert_eq!(
                result.minimal_uccs,
                muds_ucc::naive_minimal_uccs(&table),
                "MUDS vs naive UCCs on corpus repro {name}"
            );
            assert_eq!(
                result.inds,
                muds_ind::naive_inds(&table),
                "MUDS vs naive INDs on corpus repro {name}"
            );
        }
    }
}

/// Replays incremental deltas against from-scratch profiling: for every
/// algorithm, `profile(apply(table, delta))` and
/// `apply_incremental(profile(table), delta)` must land on identical
/// dependency sets. Runs over the experiment datasets and over every
/// banked fuzzer repro (the corpus holds exactly the shapes where the
/// monotone invalidation frontier is easiest to get wrong).
#[test]
fn incremental_deltas_match_from_scratch() {
    let mut tables = vec![
        uniprot_like(300, 7).dedup_rows(),
        ncvoter_like(250, 8).dedup_rows(),
        uci_dataset("bridges").dedup_rows(),
    ];
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    if let Ok(entries) = std::fs::read_dir(&corpus) {
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "csv"))
            .collect();
        paths.sort();
        for path in paths {
            let table = muds_table::table_from_csv_file(&path, &muds_table::CsvOptions::default())
                .unwrap()
                .dedup_rows();
            if table.num_columns() > 0 {
                tables.push(table);
            }
        }
    }
    let cfg = ProfilerConfig::default();
    for table in &tables {
        // One delta of each kind: delete a spread of rows, and append one
        // fresh row plus one duplicate of an existing row (which the delta
        // path must drop — duplicate-free tables are the §3 precondition).
        let mut deltas = Vec::new();
        if table.num_rows() > 0 {
            deltas.push(TableDelta::Delete {
                rows: vec![0, table.num_rows() / 2, table.num_rows() - 1],
            });
            let copy: Vec<String> = (0..table.num_columns())
                .map(|c| table.row(0)[c].unwrap_or("").to_string())
                .collect();
            let mut fresh = copy.clone();
            fresh[0] = "δ-fresh".to_string();
            deltas.push(TableDelta::Append { rows: vec![fresh, copy] });
        } else {
            deltas
                .push(TableDelta::Append { rows: vec![vec![String::new(); table.num_columns()]] });
        }
        for delta in &deltas {
            for &alg in &Algorithm::ALL {
                let base = profile(table, alg, &cfg);
                let inc = apply_incremental(&base, table, delta)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), table.name()));
                let scratch = profile(&inc.table, alg, &cfg);
                assert_eq!(
                    inc.result.fds.to_sorted_vec(),
                    scratch.fds.to_sorted_vec(),
                    "{} incremental vs scratch FDs on {}",
                    alg.name(),
                    table.name()
                );
                assert_eq!(
                    inc.result.minimal_uccs,
                    scratch.minimal_uccs,
                    "{} incremental vs scratch UCCs on {}",
                    alg.name(),
                    table.name()
                );
                assert_eq!(
                    inc.result.inds,
                    scratch.inds,
                    "{} incremental vs scratch INDs on {}",
                    alg.name(),
                    table.name()
                );
            }
        }
    }
}

/// The 256-column `ColumnSet` capacity is a typed error with an actionable
/// message all the way through the CSV entry point, not a panic.
#[test]
fn over_wide_csv_is_a_typed_error() {
    let header: Vec<String> = (0..257).map(|i| format!("c{i}")).collect();
    let row: Vec<String> = (0..257).map(|i| i.to_string()).collect();
    let csv = format!("{}\n{}\n", header.join(","), row.join(","));
    let err = muds_table::table_from_csv("wide", &csv, &muds_table::CsvOptions::default())
        .expect_err("257 columns must be rejected");
    assert!(
        matches!(err, muds_table::TableError::TooManyColumns { got: 257, max: 256 }),
        "unexpected error: {err:?}"
    );
    let message = err.to_string();
    assert!(message.contains("257") && message.contains("256"), "unhelpful message: {message}");
}
