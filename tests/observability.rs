//! Integration tests for the instrumentation layer: every algorithm run
//! carries a metrics snapshot whose counters satisfy the cache invariants,
//! counter snapshots are deterministic across same-seed runs, and a trace
//! sink receives span events for every reported phase.

use muds_core::{profile, Algorithm, ProfilerConfig};
use muds_obs::{JsonlSink, Metrics};
use muds_table::Table;

fn fixture() -> Table {
    Table::from_rows(
        "obs-fixture",
        &["id", "grp", "val", "cpy"],
        &[
            vec!["1", "a", "x", "1"],
            vec!["2", "a", "x", "2"],
            vec!["3", "b", "y", "3"],
            vec!["4", "b", "y", "4"],
            vec!["5", "c", "x", "5"],
        ],
    )
    .unwrap()
}

#[test]
fn every_algorithm_reports_consistent_pli_counters() {
    let t = fixture();
    let cfg = ProfilerConfig::default();
    for &alg in &Algorithm::ALL {
        let r = profile(&t, alg, &cfg);
        let m = &r.metrics;
        assert!(m.counter("pli.intersects") > 0, "{} built multi-column PLIs", alg.name());
        assert_eq!(
            m.counter("pli.requests"),
            m.counter("pli.hits") + m.counter("pli.misses"),
            "{}: every cache request is a hit or a miss",
            alg.name()
        );
        assert!(m.counter("spider.inds_found") > 0, "{} ran SPIDER", alg.name());
        // The phase breakdown mirrors the span tree.
        assert_eq!(r.phases.len(), m.spans.len(), "{}", alg.name());
    }
}

#[test]
fn same_seed_runs_have_identical_counter_snapshots() {
    let t = fixture();
    let cfg = ProfilerConfig::default();
    for &alg in &Algorithm::ALL {
        let a = profile(&t, alg, &cfg);
        let b = profile(&t, alg, &cfg);
        assert_eq!(a.metrics.counters, b.metrics.counters, "{}", alg.name());
        assert_eq!(a.metrics.gauges, b.metrics.gauges, "{}", alg.name());
    }
}

#[test]
fn trace_sink_receives_a_span_event_per_phase() {
    let t = fixture();
    let cfg = ProfilerConfig::default();
    let path = std::env::temp_dir().join(format!("muds-obs-trace-{}.jsonl", std::process::id()));

    let metrics = Metrics::new();
    metrics.set_sink(Box::new(JsonlSink::create(&path).expect("temp file")));
    let guard = metrics.install();
    let results: Vec<_> = Algorithm::ALL.iter().map(|&alg| profile(&t, alg, &cfg)).collect();
    drop(guard);

    let trace = std::fs::read_to_string(&path).expect("trace written");
    let _ = std::fs::remove_file(&path);
    for r in &results {
        for phase in &r.phases {
            // Phase names appear JSON-escaped in the trace (R\Z → R\\Z).
            let escaped = phase.name.replace('\\', "\\\\").replace('"', "\\\"");
            let needle = format!("\"type\":\"span_end\",\"name\":\"{escaped}\"");
            assert!(
                trace.lines().any(|l| l.contains(&needle)),
                "{}: no span_end event for phase {:?}",
                r.algorithm.name(),
                phase.name
            );
        }
    }
    // Four drained runs → four snapshot events.
    assert_eq!(trace.lines().filter(|l| l.contains("\"type\":\"snapshot\"")).count(), 4);
}
