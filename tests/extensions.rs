//! Integration tests for the extension modules built alongside the paper's
//! core scope: n-ary INDs (§2.1's generalization), the row-based
//! Dep-Miner/agree-set family (§7), and approximate FDs (TANE's g₃
//! extension) — all validated against the lattice algorithms on generated
//! experiment data.

use muds_core::{muds, MudsConfig};
use muds_datagen::{ncvoter_like, uniprot_like};
use muds_fd::{approximate_fds, depminer_fds, g3_error};
use muds_lattice::ColumnSet;
use muds_pli::PliCache;
use muds_table::Table;

#[test]
fn depminer_agrees_with_muds_on_generated_data() {
    for table in [uniprot_like(300, 7), ncvoter_like(250, 8)] {
        let report = muds(&table, &MudsConfig::default());
        assert_eq!(
            depminer_fds(&table).to_sorted_vec(),
            report.fds.to_sorted_vec(),
            "Dep-Miner vs MUDS on {}",
            table.name()
        );
        assert_eq!(
            muds_fd::agree_set_uccs(&table),
            report.minimal_uccs,
            "agree-set UCCs vs DUCC on {}",
            table.name()
        );
    }
}

#[test]
fn approximate_fds_at_zero_match_exact_on_generated_data() {
    let table = ncvoter_like(300, 8);
    let report = muds(&table, &MudsConfig::default());
    let mut cache = PliCache::new(&table);
    assert_eq!(approximate_fds(&mut cache, 0.0).to_sorted_vec(), report.fds.to_sorted_vec());
}

#[test]
fn g3_error_zero_exactly_for_valid_fds() {
    let table = uniprot_like(400, 8);
    let mut cache = PliCache::new(&table);
    let report = muds(&table, &MudsConfig::default());
    for fd in report.fds.to_sorted_vec() {
        assert_eq!(g3_error(&mut cache, &fd.lhs, fd.rhs), 0.0, "{fd}");
    }
    // And a deliberately broken FD has positive error.
    let n = table.num_columns();
    for a in 0..n {
        let lhs = ColumnSet::empty();
        if !report.fds.contains(&lhs, a) {
            assert!(g3_error(&mut cache, &lhs, a) > 0.0, "∅ → {a} should be dirty");
        }
    }
}

#[test]
fn nary_inds_extend_spider_consistently() {
    // Build a table with a planted binary IND: (order_ref, line) ⊆ (order_id, line_id).
    let rows: Vec<Vec<String>> = (0..60)
        .map(|i| {
            vec![
                (i / 3).to_string(),        // order_id
                (i % 3).to_string(),        // line_id
                ((i / 6) % 10).to_string(), // order_ref ⊆ order_id values
                (i % 3).to_string(),        // line ⊆ line_id values
            ]
        })
        .collect();
    let t =
        Table::from_rows("orders", &["order_id", "line_id", "order_ref", "line"], &rows).unwrap();
    let nary = muds_ind::nary_inds(&t, 2);
    // Arity-1 results coincide with SPIDER.
    let unary: Vec<_> = nary.iter().filter(|i| i.arity() == 1).collect();
    let spider = muds_ind::spider(&t);
    assert_eq!(unary.len(), spider.len());
    // The planted binary IND is found, with tuple (not columnwise) semantics.
    assert!(
        muds_ind::nary_ind_holds(&t, &[2, 3], &[0, 1]),
        "(order_ref, line) ⊆ (order_id, line_id) should hold"
    );
    assert!(nary.iter().any(|i| i.dependent == vec![2, 3] && i.referenced == vec![0, 1]));
}
