//! End-to-end pipeline tests: CSV in → metadata out, degenerate inputs,
//! configuration knobs, and the documented MUDS deviations.

use muds_core::{muds, profile_csv, Algorithm, MudsConfig, ProfilerConfig, ShadowLookup};
use muds_datagen::{ncvoter_like, uniprot_like};
use muds_table::{table_to_csv, CsvOptions, Table};

#[test]
fn csv_to_metadata_round_trip() {
    let table = uniprot_like(400, 7);
    let csv = table_to_csv(&table, &CsvOptions::default());
    let cfg = ProfilerConfig::default();
    for &alg in &Algorithm::ALL {
        let from_csv =
            profile_csv(table.name(), &csv, &CsvOptions::default(), alg, &cfg).expect("valid CSV");
        let direct = muds_core::profile(&table, alg, &cfg);
        assert_eq!(from_csv.fds.to_sorted_vec(), direct.fds.to_sorted_vec(), "{}", alg.name());
        assert_eq!(from_csv.minimal_uccs, direct.minimal_uccs, "{}", alg.name());
    }
}

#[test]
fn baseline_reparses_per_task_holistic_once() {
    let table = ncvoter_like(300, 8);
    let csv = table_to_csv(&table, &CsvOptions::default());
    let cfg = ProfilerConfig::default();
    // The baseline reports one phase per task; the holistic runs include a
    // single "read input" phase.
    let base = profile_csv("t", &csv, &CsvOptions::default(), Algorithm::Baseline, &cfg).unwrap();
    assert_eq!(base.phases.len(), 3, "SPIDER, DUCC, FUN phases");
    let hol = profile_csv("t", &csv, &CsvOptions::default(), Algorithm::HolisticFun, &cfg).unwrap();
    assert_eq!(hol.phases[0].name, "read input");
}

#[test]
fn muds_config_knobs_do_not_change_results_on_typical_data() {
    let table = ncvoter_like(400, 10);
    let base = muds(&table, &MudsConfig::default());
    for config in [
        MudsConfig { use_known_fd_pruning: false, ..MudsConfig::default() },
        MudsConfig { shadow_lookup: ShadowLookup::Generous, ..MudsConfig::default() },
        MudsConfig { seed: 12345, ..MudsConfig::default() },
    ] {
        let other = muds(&table, &config);
        assert_eq!(base.fds.to_sorted_vec(), other.fds.to_sorted_vec(), "{config:?}");
        assert_eq!(base.minimal_uccs, other.minimal_uccs, "{config:?}");
    }
}

#[test]
fn duplicate_rows_are_a_documented_degradation_not_a_crash() {
    let table = Table::from_rows(
        "dups",
        &["a", "b", "c"],
        &[vec!["1", "x", "q"], vec!["1", "x", "q"], vec!["2", "y", "q"], vec!["3", "y", "r"]],
    )
    .unwrap();
    assert!(table.has_duplicate_rows());
    let report = muds(&table, &MudsConfig::default());
    assert!(report.minimal_uccs.is_empty(), "duplicates admit no UCC");
    // FDs are still exact (everything flows through the R\Z walks).
    assert_eq!(report.fds.to_sorted_vec(), muds_fd::naive_minimal_fds(&table).to_sorted_vec());
}

#[test]
fn single_column_and_single_row_tables() {
    let one_col =
        Table::from_rows("c1", &["a"], &[vec!["1"], vec!["2"], vec!["2"]]).unwrap().dedup_rows();
    let r = muds(&one_col, &MudsConfig::default());
    assert!(r.inds.is_empty());
    assert_eq!(r.minimal_uccs.len(), 1);

    let one_row = Table::from_rows("r1", &["a", "b", "c"], &[vec!["1", "2", "3"]]).unwrap();
    let r = muds(&one_row, &MudsConfig::default());
    // Everything is constant: ∅ → each column; ∅ is the unique minimal UCC.
    assert_eq!(r.fds.len(), 3);
    assert_eq!(r.minimal_uccs, vec![muds_lattice::ColumnSet::empty()]);
}

#[test]
fn all_null_column_profile() {
    let t =
        Table::from_rows("nulls", &["id", "ghost"], &[vec!["1", ""], vec!["2", ""], vec!["3", ""]])
            .unwrap();
    let r = muds(&t, &MudsConfig::default());
    // ghost is constant (NULL everywhere): determined by the empty set, and
    // vacuously included in id.
    assert!(r.fds.contains(&muds_lattice::ColumnSet::empty(), 1));
    assert!(r.inds.contains(&muds_ind::Ind::new(1, 0)));
}

#[test]
fn results_are_deterministic_across_runs_and_seeds() {
    let table = uniprot_like(500, 8);
    let a = muds(&table, &MudsConfig::default());
    let b = muds(&table, &MudsConfig::default());
    assert_eq!(a.fds.to_sorted_vec(), b.fds.to_sorted_vec());
    assert_eq!(a.stats.pli.intersects, b.stats.pli.intersects, "same seed ⇒ same work");
    let c = muds(&table, &MudsConfig { seed: 999, ..MudsConfig::default() });
    assert_eq!(a.fds.to_sorted_vec(), c.fds.to_sorted_vec(), "results seed-independent");
}

#[test]
fn wide_table_is_rejected_cleanly() {
    let names: Vec<String> = (0..300).map(|i| format!("c{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<&str>> = vec![];
    assert!(Table::from_rows("wide", &name_refs, &rows).is_err());
}
