//! Property-based cross-crate tests: on arbitrary small tables, every
//! discovery algorithm matches the exponential ground-truth oracles, and
//! the paper's structural lemmas hold.

use muds_core::{muds, MudsConfig};
use muds_fd::{fun, naive_minimal_fds, tane};
use muds_ind::{inverted_index_inds, naive_inds, spider};
use muds_lattice::ColumnSet;
use muds_pli::PliCache;
use muds_table::Table;
use muds_ucc::{apriori_uccs, ducc, naive_minimal_uccs, DuccConfig};
use proptest::prelude::*;

/// Strategy: a random table with 1–6 columns, 1–35 rows, values from a
/// small alphabet (with occasional NULLs), duplicates removed.
fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..=6, 1usize..=35, 2u32..=4).prop_flat_map(|(cols, rows, card)| {
        proptest::collection::vec(proptest::collection::vec(0u32..=card, cols), rows..=rows)
            .prop_map(move |data| {
                let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
                let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                let rows: Vec<Vec<String>> = data
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|&v| if v == 0 { String::new() } else { v.to_string() })
                            .collect()
                    })
                    .collect();
                Table::from_rows("prop", &name_refs, &rows).expect("valid").dedup_rows()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn muds_matches_ground_truth(table in arb_table()) {
        let report = muds(&table, &MudsConfig::default());
        prop_assert_eq!(report.fds.to_sorted_vec(), naive_minimal_fds(&table).to_sorted_vec());
        prop_assert_eq!(report.minimal_uccs, naive_minimal_uccs(&table));
        prop_assert_eq!(report.inds, naive_inds(&table));
    }

    #[test]
    fn fd_algorithms_agree(table in arb_table()) {
        let mut c1 = PliCache::new(&table);
        let mut c2 = PliCache::new(&table);
        let t = tane(&mut c1);
        let f = fun(&mut c2);
        let truth = naive_minimal_fds(&table);
        prop_assert_eq!(t.fds.to_sorted_vec(), truth.to_sorted_vec());
        prop_assert_eq!(f.fds.to_sorted_vec(), truth.to_sorted_vec());
    }

    #[test]
    fn ucc_algorithms_agree(table in arb_table()) {
        let truth = naive_minimal_uccs(&table);
        let mut c1 = PliCache::new(&table);
        prop_assert_eq!(ducc(&mut c1, &DuccConfig::default()).minimal_uccs, truth.clone());
        let mut c2 = PliCache::new(&table);
        prop_assert_eq!(apriori_uccs(&mut c2), truth);
    }

    #[test]
    fn ind_algorithms_agree(table in arb_table()) {
        let truth = naive_inds(&table);
        prop_assert_eq!(spider(&table), truth.clone());
        prop_assert_eq!(inverted_index_inds(&table), truth);
    }

    /// Lemma 2: every minimal UCC functionally determines all other columns.
    #[test]
    fn lemma2_uccs_determine_everything(table in arb_table()) {
        let uccs = naive_minimal_uccs(&table);
        let n = table.num_columns();
        for u in &uccs {
            for a in ColumnSet::full(n).difference(u).iter() {
                prop_assert!(
                    muds_fd::holds(&table, u, a),
                    "UCC {:?} does not determine column {}", u, a
                );
            }
        }
    }

    /// Lemma 3: minimal UCCs are free sets — every proper subset has a
    /// strictly smaller distinct count.
    #[test]
    fn lemma3_minimal_uccs_are_free_sets(table in arb_table()) {
        let uccs = naive_minimal_uccs(&table);
        let mut cache = PliCache::new(&table);
        for u in &uccs {
            let card = cache.distinct_count(u);
            for sub in u.direct_subsets() {
                prop_assert!(
                    cache.distinct_count(&sub) < card,
                    "subset {:?} of minimal UCC {:?} has the same distinct count", sub, u
                );
            }
        }
    }

    /// Minimality of discovered FDs: removing any lhs column breaks them.
    #[test]
    fn discovered_fds_are_minimal_and_valid(table in arb_table()) {
        let report = muds(&table, &MudsConfig::default());
        for fd in report.fds.to_sorted_vec() {
            prop_assert!(muds_fd::holds(&table, &fd.lhs, fd.rhs), "invalid {}", fd);
            for sub in fd.lhs.direct_subsets() {
                prop_assert!(
                    !muds_fd::holds(&table, &sub, fd.rhs),
                    "{} is not minimal: {:?} suffices", fd, sub
                );
            }
        }
    }

    /// The §3 pruning rules: no FD lies entirely inside one minimal UCC,
    /// and no FD has its lhs in R\Z with rhs in Z.
    #[test]
    fn section4_pruning_rules_hold(table in arb_table()) {
        let uccs = naive_minimal_uccs(&table);
        // Rule preconditions only apply to duplicate-free tables with UCCs.
        prop_assume!(!uccs.is_empty());
        let z = uccs.iter().fold(ColumnSet::empty(), |acc, u| acc.union(u));
        let fds = naive_minimal_fds(&table);
        for fd in fds.to_sorted_vec() {
            let whole = fd.lhs.with(fd.rhs);
            prop_assert!(
                !uccs.iter().any(|u| whole.is_subset_of(u)),
                "rule 1 violated: {} inside a minimal UCC", fd
            );
            if z.contains(fd.rhs) && !fd.lhs.is_empty() {
                prop_assert!(
                    fd.lhs.intersects(&z),
                    "rule 2 violated: {} has lhs fully outside Z", fd
                );
            }
        }
    }
}
