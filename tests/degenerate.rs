//! Degenerate-input pin tests: the exact metadata every pipeline must
//! produce on empty, single-row, zero-column, single-cell, and all-NULL
//! relations. These shapes historically panicked or diverged (see
//! DESIGN.md §9); the fuzzer's `degenerate` strategy keeps probing them
//! randomly, and this file pins the agreed-upon semantics explicitly.

use muds_core::{apply_incremental, profile, Algorithm, ProfilerConfig};
use muds_lattice::ColumnSet;
use muds_table::{fingerprint, Table, TableDelta};

fn cs(cols: &[usize]) -> ColumnSet {
    ColumnSet::from_indices(cols.iter().copied())
}

/// Profiles `table` with every pipeline, asserts they all agree, and
/// returns the common result (from the MUDS run).
fn agreed(table: &Table) -> muds_core::ProfileResult {
    let cfg = ProfilerConfig::default();
    let reference = profile(table, Algorithm::Muds, &cfg);
    for &alg in &Algorithm::ALL {
        let run = profile(table, alg, &cfg);
        assert_eq!(
            run.fds.to_sorted_vec(),
            reference.fds.to_sorted_vec(),
            "{} FDs on {}",
            alg.name(),
            table.name()
        );
        assert_eq!(
            run.minimal_uccs,
            reference.minimal_uccs,
            "{} UCCs on {}",
            alg.name(),
            table.name()
        );
        assert_eq!(run.inds, reference.inds, "{} INDs on {}", alg.name(), table.name());
    }
    reference
}

#[test]
fn zero_rows() {
    let rows: &[Vec<&str>] = &[];
    let table = Table::from_rows("empty", &["a", "b"], rows).unwrap();
    let r = agreed(&table);
    // No two rows can collide: the empty set is the unique minimal UCC,
    // and the empty set determines every column.
    assert_eq!(r.minimal_uccs, vec![ColumnSet::empty()]);
    let fds = r.fds.to_sorted_vec();
    assert_eq!(fds.len(), 2);
    assert!(fds.iter().all(|fd| fd.lhs.is_empty()));
    // Both value sets are empty, so inclusion holds in both directions.
    assert_eq!(r.inds.len(), 2);
}

#[test]
fn one_row() {
    let table = Table::from_rows("one", &["a", "b", "c"], &[vec!["x", "y", "x"]]).unwrap();
    let r = agreed(&table);
    assert_eq!(r.minimal_uccs, vec![ColumnSet::empty()]);
    // Every column is constant: ∅ determines everything.
    let fds = r.fds.to_sorted_vec();
    assert_eq!(fds.len(), 3);
    assert!(fds.iter().all(|fd| fd.lhs.is_empty()));
    // a and c share the single value "x"; b has "y".
    let pairs: Vec<(usize, usize)> =
        r.inds.iter().map(|ind| (ind.dependent, ind.referenced)).collect();
    assert_eq!(pairs, vec![(0, 2), (2, 0)]);
}

#[test]
fn zero_columns() {
    let table = Table::from_rows("twocol", &["a", "b"], &[vec!["1", "2"], vec!["3", "4"]])
        .unwrap()
        .take_columns(0);
    assert_eq!(table.num_columns(), 0);
    let r = agreed(&table);
    assert!(r.fds.to_sorted_vec().is_empty());
    assert!(r.inds.is_empty());
    // With no columns there are ≥2 indistinguishable rows, so no column
    // set — not even the empty one — is unique.
    assert!(r.minimal_uccs.is_empty());
}

#[test]
fn single_cell() {
    let table = Table::from_rows("cell", &["a"], &[vec!["x"]]).unwrap();
    let r = agreed(&table);
    assert_eq!(r.minimal_uccs, vec![ColumnSet::empty()]);
    let fds = r.fds.to_sorted_vec();
    assert_eq!(fds.len(), 1);
    assert!(fds[0].lhs.is_empty());
    assert_eq!(fds[0].rhs, 0);
    assert!(r.inds.is_empty(), "unary INDs need two distinct columns");
}

#[test]
fn all_null() {
    // NULLs (empty strings) are values like any other under the paper's
    // null-equals semantics: an all-NULL relation behaves like a constant
    // relation with duplicate rows.
    let table = Table::from_rows("nulls", &["a", "b"], &[vec!["", ""], vec!["", ""]]).unwrap();
    assert!(table.has_duplicate_rows());
    let deduped = table.dedup_rows();
    let r = agreed(&deduped);
    assert_eq!(deduped.num_rows(), 1);
    assert_eq!(r.minimal_uccs, vec![ColumnSet::empty()]);
    assert_eq!(r.inds.len(), 2, "both all-NULL value sets include each other");
}

#[test]
fn constant_and_key_mix_is_exact() {
    // A two-row shape mixing a key, a constant, and a NULL column: the
    // smallest table where every family (UCC, FD, IND) is non-trivial.
    let table =
        Table::from_rows("mix", &["id", "k", "n"], &[vec!["1", "c", ""], vec!["2", "c", ""]])
            .unwrap();
    let r = agreed(&table);
    assert_eq!(r.minimal_uccs, vec![cs(&[0])]);
    let fds = r.fds.to_sorted_vec();
    // ∅ → k and ∅ → n (constants); id → nothing new beyond the key FDs.
    assert!(fds.iter().any(|fd| fd.lhs.is_empty() && fd.rhs == 1));
    assert!(fds.iter().any(|fd| fd.lhs.is_empty() && fd.rhs == 2));
    assert!(!fds.iter().any(|fd| fd.rhs == 0), "nothing determines the key");
}

// --- degenerate column statistics ----------------------------------------
//
// The single-scan stats layer (DESIGN.md §15) must produce finite, sane
// numbers on exactly the shapes that break naive aggregation: nothing to
// average, nothing to type, nothing distinct. No NaN may ever reach the
// payload — `write_f64` debug-asserts finiteness on the wire.

/// Profiles with stats enabled and returns the stats section.
fn stats_of(table: &Table) -> muds_core::StatsProfile {
    let cfg = ProfilerConfig { stats: true, ..ProfilerConfig::default() };
    let r = profile(table, Algorithm::Muds, &cfg);
    r.stats.expect("stats requested")
}

fn assert_finite(stats: &muds_core::StatsProfile) {
    for c in &stats.columns {
        for (what, v) in [
            ("null_fraction", c.null_fraction),
            ("distinct_fraction", c.distinct_fraction),
            ("entropy", c.entropy),
            ("avg_length", c.avg_length),
            ("format_consistency", c.format_consistency),
            ("quality", c.quality),
        ] {
            assert!(v.is_finite(), "column {}: {what} = {v}", c.column);
        }
        if let Some(n) = &c.numeric {
            for (what, v) in [
                ("min", n.min),
                ("max", n.max),
                ("mean", n.mean),
                ("variance", n.variance),
                ("q25", n.q25),
                ("median", n.median),
                ("q75", n.q75),
            ] {
                assert!(v.is_finite(), "column {}: numeric {what} = {v}", c.column);
            }
        }
    }
}

#[test]
fn zero_row_stats_are_finite_and_empty_typed() {
    let rows: &[Vec<&str>] = &[];
    let table = Table::from_rows("empty", &["a", "b"], rows).unwrap();
    let stats = stats_of(&table);
    assert_finite(&stats);
    assert_eq!(stats.columns.len(), 2);
    for c in &stats.columns {
        assert_eq!((c.rows, c.nulls, c.distinct), (0, 0, 0));
        assert_eq!(c.null_fraction, 0.0, "no rows means nothing is null");
        assert_eq!(c.entropy, 0.0);
        assert_eq!(c.format.name(), "empty");
        assert_eq!(c.semantic_type.name(), "unknown");
        assert_eq!((c.min.as_deref(), c.max.as_deref()), (None, None));
        assert!(c.numeric.is_none());
    }
    assert!(stats.foreign_keys.is_empty(), "no values, no inclusion evidence");
}

#[test]
fn zero_column_stats_are_empty() {
    let table = Table::from_rows("twocol", &["a", "b"], &[vec!["1", "2"], vec!["3", "4"]])
        .unwrap()
        .take_columns(0);
    let stats = stats_of(&table);
    assert!(stats.columns.is_empty());
    assert!(stats.identifiers.is_empty());
    assert!(stats.foreign_keys.is_empty());
}

#[test]
fn all_null_stats_have_no_values_but_full_null_fraction() {
    let table = Table::from_rows("nulls", &["a", "b"], &[vec!["", ""], vec!["", ""]]).unwrap();
    let stats = stats_of(&table);
    assert_finite(&stats);
    for c in &stats.columns {
        assert_eq!(c.rows, 2);
        assert_eq!(c.nulls, 2);
        assert_eq!(c.distinct, 0, "NULL is absence, not a distinct value");
        assert_eq!(c.null_fraction, 1.0);
        assert_eq!(c.distinct_fraction, 0.0);
        assert_eq!(c.format.name(), "empty");
        assert_eq!(c.semantic_type.name(), "unknown");
        assert!(c.numeric.is_none(), "no non-NULL values to aggregate");
        assert!(c.quality < 0.5, "an all-NULL column scores poorly: {}", c.quality);
    }
}

#[test]
fn single_cell_stats_have_zero_variance_and_no_nan() {
    let table = Table::from_rows("cell", &["a"], &[vec!["7"]]).unwrap();
    let stats = stats_of(&table);
    assert_finite(&stats);
    let c = &stats.columns[0];
    assert_eq!((c.rows, c.nulls, c.distinct), (1, 0, 1));
    assert_eq!(c.entropy, 0.0, "a constant column carries no information");
    assert_eq!(c.format.name(), "integer");
    let n = c.numeric.as_ref().expect("a numeric single cell aggregates");
    assert_eq!((n.min, n.max, n.mean, n.variance), (7.0, 7.0, 7.0, 0.0));
    assert_eq!((n.q25, n.median, n.q75), (7.0, 7.0, 7.0));
}

#[test]
fn hostile_unicode_survives_format_detection() {
    // Multi-byte, bidi-override, zero-width, and combining-mark values must
    // classify deterministically (as text) without panicking anywhere in
    // the scan, and length stats count bytes consistently.
    let table = Table::from_rows(
        "hostile",
        &["u"],
        &[vec!["🦀🦀🦀"], vec!["\u{202e}123"], vec!["１２３"], vec!["a\u{0301}"], vec!["\u{200b}"]],
    )
    .unwrap();
    let stats = stats_of(&table);
    assert_finite(&stats);
    let c = &stats.columns[0];
    assert_eq!(c.distinct, 5);
    assert_eq!(c.format.name(), "text");
    assert_eq!(c.format_consistency, 1.0, "every value classifies as text");
    assert!(c.numeric.is_none());
    assert!(c.min_length >= 1 && c.max_length >= c.min_length);
}

// --- degenerate deltas ---------------------------------------------------
//
// The incremental path must handle the delta shapes that do the least (and
// the most): an empty append, deleting every row, and a round trip that
// lands back on the starting relation.

fn mix_table() -> Table {
    Table::from_rows(
        "mix",
        &["id", "k", "n"],
        &[vec!["1", "c", ""], vec!["2", "c", ""], vec!["3", "d", "q"]],
    )
    .unwrap()
}

#[test]
fn empty_append_is_the_identity() {
    let table = mix_table();
    let cfg = ProfilerConfig::default();
    for &alg in &Algorithm::ALL {
        let base = profile(&table, alg, &cfg);
        let out = apply_incremental(&base, &table, &TableDelta::Append { rows: vec![] }).unwrap();
        assert_eq!(out.appended_rows, 0, "{}", alg.name());
        assert_eq!(out.revalidated, 0, "{}: nothing changed, nothing to revalidate", alg.name());
        assert_eq!(fingerprint(&out.table), fingerprint(&table), "{}", alg.name());
        assert_eq!(out.result.fds.to_sorted_vec(), base.fds.to_sorted_vec(), "{}", alg.name());
        assert_eq!(out.result.minimal_uccs, base.minimal_uccs, "{}", alg.name());
        assert_eq!(out.result.inds, base.inds, "{}", alg.name());
    }
}

#[test]
fn delete_all_rows_matches_the_empty_relation() {
    let table = mix_table();
    let cfg = ProfilerConfig::default();
    for &alg in &Algorithm::ALL {
        let base = profile(&table, alg, &cfg);
        let out =
            apply_incremental(&base, &table, &TableDelta::Delete { rows: vec![0, 1, 2] }).unwrap();
        assert_eq!(out.table.num_rows(), 0, "{}", alg.name());
        // The zero-row pins from `zero_rows` above, reached incrementally.
        let scratch = profile(&out.table, alg, &cfg);
        assert_eq!(out.result.minimal_uccs, vec![ColumnSet::empty()], "{}", alg.name());
        assert_eq!(out.result.fds.to_sorted_vec(), scratch.fds.to_sorted_vec(), "{}", alg.name());
        assert_eq!(out.result.minimal_uccs, scratch.minimal_uccs, "{}", alg.name());
        assert_eq!(out.result.inds, scratch.inds, "{}", alg.name());
    }
}

#[test]
fn append_then_delete_the_appended_rows_is_the_identity() {
    // Appends land at the end of the table, so deleting exactly the
    // appended row ids restores the original relation — row order included,
    // which makes even the fingerprint match.
    let table = mix_table();
    let cfg = ProfilerConfig::default();
    let fresh = vec![
        vec!["9".to_string(), "e".to_string(), "r".to_string()],
        vec!["10".to_string(), "c".to_string(), String::new()],
    ];
    for &alg in &Algorithm::ALL {
        let base = profile(&table, alg, &cfg);
        let appended =
            apply_incremental(&base, &table, &TableDelta::Append { rows: fresh.clone() }).unwrap();
        assert_eq!(appended.appended_rows, 2, "{}", alg.name());
        let back = apply_incremental(
            &appended.result,
            &appended.table,
            &TableDelta::Delete { rows: vec![3, 4] },
        )
        .unwrap();
        assert_eq!(fingerprint(&back.table), fingerprint(&table), "{}", alg.name());
        assert_eq!(back.result.fds.to_sorted_vec(), base.fds.to_sorted_vec(), "{}", alg.name());
        assert_eq!(back.result.minimal_uccs, base.minimal_uccs, "{}", alg.name());
        assert_eq!(back.result.inds, base.inds, "{}", alg.name());
    }
}
