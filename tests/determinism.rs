//! Thread-count determinism matrix: every algorithm must produce
//! byte-identical results AND identical observability output for any
//! worker-thread count.
//!
//! The parallel execution layer is deterministic by construction — batch
//! APIs keep all bookkeeping sequential and only fan out pure compute
//! (PLI intersections, partition-refinement scans, dictionary sorts), and
//! the vendored `rayon`'s parallel sort is stable for every split — so
//! dependency sets, counter totals, and span-tree structure may not vary
//! with `--threads`. This matrix pins that contract on the paper's stand-in
//! datasets.
//!
//! Everything runs inside ONE `#[test]` function: the worker-pool size is
//! process-global state, so separate test functions (which run
//! concurrently) would race on it.

use std::collections::BTreeMap;

use muds_core::{profile, Algorithm, ProfilerConfig};
use muds_datagen::{ionosphere_like, ncvoter_like, uniprot_like};
use muds_fd::Fd;
use muds_ind::Ind;
use muds_lattice::ColumnSet;
use muds_obs::{Metrics, SpanNode};
use muds_table::Table;

/// Everything a run produces that must be invariant under the thread count.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    fds: Vec<Fd>,
    uccs: Vec<ColumnSet>,
    inds: Vec<Ind>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    /// Span tree with durations stripped (names + nesting only; wall-clock
    /// obviously varies between runs).
    span_shape: Vec<String>,
}

fn span_names(nodes: &[SpanNode], depth: usize, out: &mut Vec<String>) {
    for n in nodes {
        out.push(format!("{}{}", "  ".repeat(depth), n.name));
        span_names(&n.children, depth + 1, out);
    }
}

fn fingerprint(table: &Table, algorithm: Algorithm) -> RunFingerprint {
    // A fresh registry per run so counters never leak across matrix cells.
    let metrics = Metrics::new();
    let _guard = metrics.install();
    let result = profile(table, algorithm, &ProfilerConfig::default());
    let mut span_shape = Vec::new();
    span_names(&result.metrics.spans, 0, &mut span_shape);
    RunFingerprint {
        fds: result.fds.to_sorted_vec(),
        uccs: result.minimal_uccs,
        inds: result.inds,
        counters: result.metrics.counters,
        gauges: result.metrics.gauges,
        span_shape,
    }
}

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("vendored rayon pool is reconfigurable");
}

#[test]
fn results_and_counters_are_identical_for_any_thread_count() {
    let datasets: Vec<Table> = vec![uniprot_like(200, 6), ncvoter_like(150, 8), ionosphere_like(8)];

    for table in &datasets {
        for &algorithm in &Algorithm::ALL {
            set_threads(1);
            let reference = fingerprint(table, algorithm);
            assert!(
                !reference.counters.is_empty(),
                "{} on {} recorded no counters — fingerprint is vacuous",
                algorithm.name(),
                table.name()
            );
            for n in [2usize, 8] {
                set_threads(n);
                let run = fingerprint(table, algorithm);
                assert_eq!(
                    run,
                    reference,
                    "{} on {} differs between --threads 1 and --threads {n}",
                    algorithm.name(),
                    table.name()
                );
            }
        }
    }

    // Restore the default (all cores) for anything else in this process.
    set_threads(0);
}
