//! Thread-count determinism matrix: every algorithm must produce
//! byte-identical results AND identical observability output for any
//! worker-thread count.
//!
//! The parallel execution layer is deterministic by construction — batch
//! APIs keep all bookkeeping sequential and only fan out pure compute
//! (PLI intersections, partition-refinement scans, dictionary sorts), and
//! the vendored `rayon`'s parallel sort is stable for every split — so
//! dependency sets, counter totals, and span-tree structure may not vary
//! with `--threads`. This matrix pins that contract on the paper's stand-in
//! datasets.
//!
//! Everything runs inside ONE `#[test]` function: the worker-pool size is
//! process-global state, so separate test functions (which run
//! concurrently) would race on it.

use std::collections::BTreeMap;

use muds_core::{profile, Algorithm, ProfilerConfig};
use muds_datagen::{ionosphere_like, ncvoter_like, uniprot_like};
use muds_fd::Fd;
use muds_ind::Ind;
use muds_lattice::ColumnSet;
use muds_obs::{Metrics, SpanNode};
use muds_table::Table;

/// Everything a run produces that must be invariant under the thread count.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    fds: Vec<Fd>,
    uccs: Vec<ColumnSet>,
    inds: Vec<Ind>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    /// Span tree with durations stripped (names + nesting only; wall-clock
    /// obviously varies between runs).
    span_shape: Vec<String>,
}

fn span_names(nodes: &[SpanNode], depth: usize, out: &mut Vec<String>) {
    for n in nodes {
        out.push(format!("{}{}", "  ".repeat(depth), n.name));
        span_names(&n.children, depth + 1, out);
    }
}

fn fingerprint(table: &Table, algorithm: Algorithm) -> RunFingerprint {
    // A fresh registry per run so counters never leak across matrix cells.
    let metrics = Metrics::new();
    let _guard = metrics.install();
    let result = profile(table, algorithm, &ProfilerConfig::default());
    let mut span_shape = Vec::new();
    span_names(&result.metrics.spans, 0, &mut span_shape);
    RunFingerprint {
        fds: result.fds.to_sorted_vec(),
        uccs: result.minimal_uccs,
        inds: result.inds,
        counters: result.metrics.counters,
        gauges: result.metrics.gauges,
        span_shape,
    }
}

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("vendored rayon pool is reconfigurable");
}

/// Crates whose hash-order allow sites are exercised by the matrix below:
/// `Algorithm::ALL` over the three stand-in datasets drives PLI
/// construction and intersection, FD/UCC/IND discovery, and the lattice
/// walk end to end, so a hash-order leak in any of these crates would
/// change a fingerprint between thread counts.
const MATRIX_COVERED_CRATES: [&str; 6] =
    ["crates/core", "crates/fd", "crates/ind", "crates/lattice", "crates/pli", "crates/ucc"];

#[test]
fn results_and_counters_are_identical_for_any_thread_count() {
    let datasets: Vec<Table> = vec![uniprot_like(200, 6), ncvoter_like(150, 8), ionosphere_like(8)];

    for table in &datasets {
        for &algorithm in &Algorithm::ALL {
            set_threads(1);
            let reference = fingerprint(table, algorithm);
            assert!(
                !reference.counters.is_empty(),
                "{} on {} recorded no counters — fingerprint is vacuous",
                algorithm.name(),
                table.name()
            );
            for n in [2usize, 8] {
                set_threads(n);
                let run = fingerprint(table, algorithm);
                assert_eq!(
                    run,
                    reference,
                    "{} on {} differs between --threads 1 and --threads {n}",
                    algorithm.name(),
                    table.name()
                );
            }
        }
    }

    // Restore the default (all cores) for anything else in this process.
    set_threads(0);
}

/// Cross-references the lint pass with this matrix: every
/// `lint:allow(hash-order)` site in an algorithm crate must live in a
/// crate the matrix exercises ([`MATRIX_COVERED_CRATES`]). An allow in an
/// uncovered crate means someone suppressed the hash-order lint without a
/// determinism test standing behind the justification — add the crate to
/// the matrix (and the list above) or remove the allow.
#[test]
fn every_hash_order_allow_is_backed_by_a_matrix_case() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let sites = muds_lint::collect_allow_sites(root).expect("scan workspace allows");
    let hash_allows: Vec<&(String, muds_lint::AllowSite)> =
        sites.iter().filter(|(_, site)| site.key == "hash-order").collect();
    assert!(
        !hash_allows.is_empty(),
        "no hash-order allow sites found — the cross-reference is vacuous; \
         if they were all removed, delete this test's allow-list too"
    );
    for (file, site) in &hash_allows {
        // Non-algorithm layers (lint itself, serve, obs, cli, vendor, the
        // bench harness) don't feed profile results, so hash order there
        // can't reach a fingerprint; the matrix contract is about
        // algorithm crates only.
        let algorithm_crate = MATRIX_COVERED_CRATES
            .iter()
            .chain(["crates/datagen", "crates/table"].iter())
            .any(|c| file.starts_with(c));
        let exempt_layer = [
            "crates/lint",
            "crates/obs",
            "crates/serve",
            "crates/cli",
            "crates/bench",
            "crates/check",
            "vendor/",
            "tests/",
            "src/",
        ]
        .iter()
        .any(|p| file.starts_with(p));
        assert!(
            algorithm_crate || exempt_layer,
            "{file}:{}: hash-order allow in unrecognised crate — classify it in \
             tests/determinism.rs (matrix-covered or exempt layer)",
            site.line
        );
        if algorithm_crate {
            assert!(
                MATRIX_COVERED_CRATES.iter().any(|c| file.starts_with(c)),
                "{file}:{}: hash-order allow ({:?}) in an algorithm crate the \
                 determinism matrix does not exercise — add a matrix case and \
                 list the crate in MATRIX_COVERED_CRATES",
                site.line,
                site.justification
            );
            assert!(
                site.justification.len() >= 8,
                "{file}:{}: hash-order justification too thin",
                site.line
            );
        }
    }
}
