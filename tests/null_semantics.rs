//! NULL-semantics integration suite (promised by the `Column` docs).
//!
//! Pins the Metanome conventions the whole workspace shares: for UCC/FD
//! discovery NULL equals NULL (all NULL rows of a column collapse into one
//! equality class via `Column::null_code`), while IND discovery ignores
//! NULLs on the dependent side (`Column::sorted_distinct_values` excludes
//! them). Every algorithm must agree on tables exercising these shapes —
//! fully-NULL columns, partially-NULL columns, and NULL-only rows.

use muds_core::{muds, profile, Algorithm, MudsConfig, ProfilerConfig};
use muds_fd::naive_minimal_fds;
use muds_ind::naive_inds;
use muds_lattice::ColumnSet;
use muds_table::Table;
use muds_ucc::naive_minimal_uccs;

fn cs(cols: &[usize]) -> ColumnSet {
    ColumnSet::from_indices(cols.iter().copied())
}

/// id is a key; `hole` is partially NULL; `void` is fully NULL.
fn null_table() -> Table {
    Table::from_rows(
        "nulls",
        &["id", "hole", "void"],
        &[vec!["1", "a", ""], vec!["2", "", ""], vec!["3", "b", ""], vec!["4", "", ""]],
    )
    .unwrap()
}

#[test]
fn null_code_is_one_past_the_dictionary() {
    let t = null_table();
    // `hole`: dictionary {a, b}, NULL code 2 shared by both NULL rows.
    let hole = t.column(1);
    assert_eq!(hole.null_code(), hole.sorted_distinct_values().len() as u32);
    assert_eq!(hole.codes(), &[0, 2, 1, 2]);
    assert_eq!(hole.null_count(), 2);
    // NULL counts as one more distinct value under UCC/FD semantics.
    assert_eq!(hole.distinct_count(), 3);
    // `void`: empty dictionary, every row is code 0.
    let void = t.column(2);
    assert_eq!(void.null_code(), 0);
    assert_eq!(void.codes(), &[0, 0, 0, 0]);
    assert_eq!(void.distinct_count(), 1);
}

#[test]
fn fully_null_column_is_a_constant() {
    let t = null_table();
    let fds = naive_minimal_fds(&t);
    // ∅ → void: the all-NULL column is constant under null = null.
    assert!(fds.contains(&ColumnSet::empty(), 2));
    // A constant can never be part of a minimal UCC of a multi-row table.
    for ucc in naive_minimal_uccs(&t) {
        assert!(!ucc.contains(2), "constant column inside minimal UCC {ucc:?}");
    }
    // Every algorithm reproduces both facts.
    let cfg = ProfilerConfig::default();
    for &alg in &Algorithm::ALL {
        let r = profile(&t, alg, &cfg);
        assert!(r.fds.contains(&ColumnSet::empty(), 2), "{}", alg.name());
        assert!(r.minimal_uccs.iter().all(|u| !u.contains(2)), "{}", alg.name());
    }
}

#[test]
fn partially_null_column_treats_nulls_as_one_value() {
    // Two NULL rows in `x` agree with each other, so {x} is not unique,
    // but x distinguishes rows 0/2 from the NULL rows.
    let t = Table::from_rows(
        "partial",
        &["x", "y"],
        &[vec!["a", "1"], vec!["", "2"], vec!["b", "3"], vec!["", "4"]],
    )
    .unwrap();
    let uccs = naive_minimal_uccs(&t);
    assert_eq!(uccs, vec![cs(&[1])], "NULL rows of x collide, y is the only key");
    // x → nothing: the two NULL rows of x map to different y values.
    assert!(!naive_minimal_fds(&t).contains(&cs(&[0]), 1));
    for &alg in &Algorithm::ALL {
        let r = profile(&t, alg, &ProfilerConfig::default());
        assert_eq!(r.minimal_uccs, uccs, "{}", alg.name());
    }
}

#[test]
fn null_only_rows_compare_equal_in_dedup() {
    let t =
        Table::from_rows("t", &["a", "b"], &[vec!["", ""], vec!["", ""], vec!["1", ""]]).unwrap();
    assert!(t.has_duplicate_rows());
    let d = t.dedup_rows();
    assert_eq!(d.num_rows(), 2);
    // After dedup, `a` is a key: NULL vs "1" is the only distinction.
    assert_eq!(naive_minimal_uccs(&d), vec![cs(&[0])]);
}

#[test]
fn ind_side_ignores_nulls_consistently() {
    let t = null_table();
    let want = naive_inds(&t);
    // The all-NULL column is vacuously included in every other column and
    // referenced by none.
    assert!(want.contains(&muds_ind::Ind::new(2, 0)));
    assert!(want.contains(&muds_ind::Ind::new(2, 1)));
    assert!(!want.iter().any(|i| i.referenced == 2));
    assert_eq!(muds_ind::spider(&t), want);
    assert_eq!(muds_ind::inverted_index_inds(&t), want);
    for &alg in &Algorithm::ALL {
        let r = profile(&t, alg, &ProfilerConfig::default());
        assert_eq!(r.inds, want, "{}", alg.name());
    }
}

#[test]
fn all_algorithms_agree_end_to_end_on_null_heavy_data() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(1100);
    for case in 0..30 {
        let cols = rng.gen_range(2..=5);
        let rows = rng.gen_range(1..=20);
        let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        // Heavy NULL density: half the cells are empty.
        let data: Vec<Vec<String>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            String::new()
                        } else {
                            rng.gen_range(0..3).to_string()
                        }
                    })
                    .collect()
            })
            .collect();
        let t = Table::from_rows(format!("n{case}"), &name_refs, &data).unwrap().dedup_rows();
        let fds = naive_minimal_fds(&t).to_sorted_vec();
        let uccs = naive_minimal_uccs(&t);
        let inds = naive_inds(&t);
        for &alg in &Algorithm::ALL {
            let r = profile(&t, alg, &ProfilerConfig::default());
            assert_eq!(r.fds.to_sorted_vec(), fds, "{} case {case}", alg.name());
            assert_eq!(r.minimal_uccs, uccs, "{} case {case}", alg.name());
            assert_eq!(r.inds, inds, "{} case {case}", alg.name());
        }
    }
    // The MUDS entry point agrees too (profile() already covers it, but the
    // direct API is what library users call).
    let t = null_table();
    let report = muds(&t, &MudsConfig::default());
    assert_eq!(report.fds.to_sorted_vec(), naive_minimal_fds(&t).to_sorted_vec());
}
