//! Facade crate re-exporting the full holistic-profiling API.
pub use muds_core as core;
pub use muds_datagen as datagen;
pub use muds_fd as fd;
pub use muds_ind as ind;
pub use muds_lattice as lattice;
pub use muds_pli as pli;
pub use muds_table as table;
pub use muds_ucc as ucc;
