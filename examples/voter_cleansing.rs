//! Data-cleansing scenario: profiling an ncvoter-like registration table
//! and comparing the holistic algorithms on it — the dataset family the
//! paper uses for its MUDS phase analysis (Figure 8).
//!
//! A cleansing pipeline uses the metadata to define integrity rules: UCCs
//! become uniqueness constraints, FD chains (precinct → municipality →
//! county → district) become consistency checks, and violations after
//! future inserts indicate dirty data.
//!
//! Run with: `cargo run --release --example voter_cleansing`

use muds_core::{baseline, holistic_fun, muds, MudsConfig};
use muds_datagen::ncvoter_like;
use std::time::Instant;

fn main() {
    let table = ncvoter_like(2_000, 12);
    let names = table.column_names();
    println!(
        "profiling {:?} ({} rows x {} columns)\n",
        table.name(),
        table.num_rows(),
        table.num_columns()
    );

    // All three pipelines; the holistic ones share scan + PLIs.
    let t0 = Instant::now();
    let seq = baseline(&table, 42);
    let seq_time = t0.elapsed();

    let t0 = Instant::now();
    let hfun = holistic_fun(&table);
    let hfun_time = t0.elapsed();

    let t0 = Instant::now();
    let report = muds(&table, &MudsConfig::default());
    let muds_time = t0.elapsed();

    assert_eq!(seq.fds.to_sorted_vec(), hfun.fds.to_sorted_vec());
    assert_eq!(hfun.fds.to_sorted_vec(), report.fds.to_sorted_vec());

    println!("uniqueness constraints to enforce (minimal UCCs):");
    for ucc in report.minimal_uccs.iter().take(8) {
        let cols: Vec<&str> = ucc.iter().map(|c| names[c]).collect();
        println!("  UNIQUE ({})", cols.join(", "));
    }
    if report.minimal_uccs.len() > 8 {
        println!("  ... and {} more", report.minimal_uccs.len() - 8);
    }

    println!("\njurisdiction consistency rules (FD chain):");
    for fd in report.fds.to_sorted_vec() {
        if fd.lhs.cardinality() == 1 {
            let src = fd.lhs.min_col().expect("single column");
            if names[src] == "precinct" || names[src] == "municipality" || names[src] == "county" {
                println!("  CHECK: {} determines {}", names[src], names[fd.rhs]);
            }
        }
    }

    println!("\nruntime comparison on this table:");
    println!("  sequential baseline : {seq_time:?}");
    println!("  Holistic FUN        : {hfun_time:?}");
    println!("  MUDS                : {muds_time:?}");
    println!("\nMUDS phase breakdown:");
    for (name, d) in report.timings.as_rows() {
        println!("  {name:<28} {d:?}");
    }
}
