//! Data-integration scenario from the paper's introduction: genome-style
//! datasets from different sources need to be linked, which requires
//! knowing keys (UCCs), join candidates (INDs), and redundancies (FDs) *at
//! the same time* — the motivating case for holistic profiling.
//!
//! This example profiles a generated uniprot-like protein table, then uses
//! the discovered metadata the way an integration pipeline would:
//! * minimal UCCs → candidate record identifiers for linkage;
//! * INDs → columns that can serve as foreign-key join paths;
//! * FDs → annotation columns derivable from others (safe to drop when
//!   normalizing).
//!
//! Run with: `cargo run --release --example genome_integration`

use muds_core::{muds, MudsConfig};
use muds_datagen::uniprot_like;

fn main() {
    let table = uniprot_like(5_000, 10);
    let names = table.column_names();
    println!(
        "profiling {:?} ({} rows x {} columns)...\n",
        table.name(),
        table.num_rows(),
        table.num_columns()
    );

    let report = muds(&table, &MudsConfig::default());

    println!("candidate record identifiers (minimal UCCs):");
    for ucc in &report.minimal_uccs {
        let cols: Vec<&str> = ucc.iter().map(|c| names[c]).collect();
        println!("  {{{}}}", cols.join(", "));
    }

    println!("\njoin-path candidates (inclusion dependencies):");
    if report.inds.is_empty() {
        println!("  (none)");
    }
    for ind in &report.inds {
        println!("  {} values all appear in {}", names[ind.dependent], names[ind.referenced]);
    }

    // Columns functionally determined by a single other column are
    // denormalization artifacts: list them with their source.
    println!("\nderivable annotation columns (single-column FDs):");
    let mut any = false;
    for fd in report.fds.to_sorted_vec() {
        if fd.lhs.cardinality() == 1 && !report.minimal_uccs.iter().any(|u| u.is_subset_of(&fd.lhs))
        {
            let src = fd.lhs.min_col().expect("single column");
            println!("  {} is determined by {}", names[fd.rhs], names[src]);
            any = true;
        }
    }
    if !any {
        println!("  (none)");
    }

    println!(
        "\ndiscovered {} INDs, {} minimal UCCs, {} minimal FDs in {:?}",
        report.inds.len(),
        report.minimal_uccs.len(),
        report.fds.len(),
        report.timings.total()
    );
}
