//! Table 1 of the paper, executed: SPIDER's candidate elimination on the
//! three-column example relation.
//!
//! The paper walks through columns A = {w, x, y, z}, B = {x, z},
//! C = {w, x, z}: sorting produces duplicate-free value lists, then the
//! synchronized sweep intersects candidate sets group by group until only
//! the valid INDs remain — B ⊆ A, B ⊆ C, C ⊆ A.
//!
//! Run with: `cargo run --release --example spider_walkthrough`

use muds_core::{profile, Algorithm, ProfilerConfig};
use muds_ind::{format_inds, spider_with_stats};
use muds_table::Table;

fn main() {
    let table = Table::from_rows(
        "table1",
        &["A", "B", "C"],
        &[
            vec!["w", "z", "x"],
            vec!["w", "x", "x"],
            vec!["x", "z", "w"],
            vec!["y", "z", "z"],
            vec!["z", "z", "z"],
        ],
    )
    .expect("valid table");

    println!("sorted duplicate-free value lists (phase 1):");
    for (i, col) in table.columns().iter().enumerate() {
        println!("  {}: {:?}", table.column_names()[i], col.sorted_distinct_values());
    }

    let (inds, stats) = spider_with_stats(&table);
    println!("\ncomparison phase: {} value groups processed", stats.groups_formed);
    println!("\nsurviving unary INDs (paper: B ⊆ A, B ⊆ C, C ⊆ A):");
    for line in format_inds(&inds, &table.column_names()) {
        println!("  {line}");
    }

    // The same INDs come out of the full holistic pipeline, where SPIDER
    // runs during the shared input scan.
    let result = profile(&table, Algorithm::Muds, &ProfilerConfig::default());
    assert_eq!(result.inds, inds);
    println!("\n(confirmed identical through the holistic MUDS pipeline)");
}
