//! Profiling CSV input end-to-end, including the shared-I/O effect: the
//! holistic algorithms parse the file once, the sequential baseline pays
//! one parse per profiling task (§3 of the paper: shared I/O cost).
//!
//! Run with: `cargo run --release --example csv_profiling`

use muds_core::{profile_csv, Algorithm, ProfilerConfig};
use muds_table::CsvOptions;

const CSV: &str = "\
order_id,customer,customer_tier,product,category,unit_price,qty
1001,acme,gold,widget,hardware,9.99,3
1002,acme,gold,gadget,hardware,19.99,1
1003,burrito-barn,silver,widget,hardware,9.99,7
1004,acme,gold,sprocket,hardware,4.99,2
1005,cat-cafe,bronze,catnip,consumable,2.49,12
1006,burrito-barn,silver,gadget,hardware,19.99,1
1007,cat-cafe,bronze,widget,hardware,9.99,1
";

fn main() {
    let config = ProfilerConfig::default();
    println!("profiling an orders CSV ({} bytes)\n", CSV.len());

    for algorithm in [Algorithm::Baseline, Algorithm::HolisticFun, Algorithm::Muds] {
        let result = profile_csv("orders", CSV, &CsvOptions::default(), algorithm, &config)
            .expect("valid CSV");
        let (inds, uccs, fds) = result.counts();
        println!(
            "{:<9} -> {} INDs, {} UCCs, {} FDs; phases:",
            result.algorithm.name(),
            inds,
            uccs,
            fds
        );
        for phase in &result.phases {
            println!("    {:<14} {:?}", phase.name, phase.duration);
        }
    }

    // The interesting discovered rule on this data: customer determines
    // customer_tier (a normalization candidate), and product determines
    // category and unit_price.
    let result =
        profile_csv("orders", CSV, &CsvOptions::default(), Algorithm::Muds, &config).unwrap();
    let table = muds_table::table_from_csv("orders", CSV, &CsvOptions::default()).unwrap();
    let names = table.column_names();
    println!("\nexample discovered rules:");
    for fd in result.fds.to_sorted_vec() {
        if fd.lhs.cardinality() == 1 {
            let src = fd.lhs.min_col().expect("single column");
            println!("  {} determines {}", names[src], names[fd.rhs]);
        }
    }
}
