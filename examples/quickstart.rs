//! Quickstart: holistically profile a small table with MUDS.
//!
//! Builds a tiny employee relation, runs the holistic profiler, and prints
//! all three kinds of metadata the paper's algorithm discovers in one pass:
//! unary inclusion dependencies, minimal unique column combinations, and
//! minimal functional dependencies.
//!
//! Run with: `cargo run --release --example quickstart`

use muds_core::{profile, Algorithm, ProfilerConfig};
use muds_ind::format_inds;
use muds_table::Table;

fn main() {
    let table = Table::from_rows(
        "employees",
        &["emp_id", "email", "dept", "dept_head", "office", "salary_band"],
        &[
            vec!["1", "ann@corp.io", "cs", "dijkstra", "b42", "s2"],
            vec!["2", "bob@corp.io", "cs", "dijkstra", "b42", "s1"],
            vec!["3", "cat@corp.io", "ee", "shannon", "b17", "s2"],
            vec!["4", "dan@corp.io", "ee", "shannon", "b17", "s3"],
            vec!["5", "eve@corp.io", "cs", "dijkstra", "b42", "s3"],
        ],
    )
    .expect("valid table");

    let result = profile(&table, Algorithm::Muds, &ProfilerConfig::default());
    let names = table.column_names();

    println!(
        "profiled {:?}: {} rows x {} columns\n",
        table.name(),
        table.num_rows(),
        table.num_columns()
    );

    println!("unary inclusion dependencies ({}):", result.inds.len());
    for line in format_inds(&result.inds, &names) {
        println!("  {line}");
    }

    println!("\nminimal unique column combinations ({}):", result.minimal_uccs.len());
    for ucc in &result.minimal_uccs {
        let cols: Vec<&str> = ucc.iter().map(|c| names[c]).collect();
        println!("  {{{}}}", cols.join(", "));
    }

    println!("\nminimal functional dependencies ({}):", result.fds.len());
    for fd in result.fds.to_sorted_vec() {
        let lhs: Vec<&str> = fd.lhs.iter().map(|c| names[c]).collect();
        println!("  {{{}}} -> {}", lhs.join(", "), names[fd.rhs]);
    }

    println!("\nphase timings:");
    for phase in &result.phases {
        println!("  {:<28} {:?}", phase.name, phase.duration);
    }
}
